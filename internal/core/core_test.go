package core

import (
	"sort"
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/er"
	"xmlrdb/internal/paper"
)

func mapPaper(t *testing.T) *Result {
	t.Helper()
	d, err := dtd.Parse(paper.Example1DTD)
	if err != nil {
		t.Fatalf("parse paper DTD: %v", err)
	}
	res, err := Map(d)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return res
}

// TestExample2Golden reproduces the paper's Example 2 byte for byte.
func TestExample2Golden(t *testing.T) {
	res := mapPaper(t)
	got := res.Converted.String()
	if got != paper.Example2Converted {
		t.Errorf("converted DTD differs from Example 2.\n--- got ---\n%s--- want ---\n%s", got, paper.Example2Converted)
	}
}

// TestFigure2Entities reproduces the entity and relationship inventory
// of the paper's Figure 2.
func TestFigure2Entities(t *testing.T) {
	res := mapPaper(t)
	m := res.Model

	var entities []string
	for _, e := range m.Entities {
		entities = append(entities, e.Name)
	}
	if got, want := strings.Join(entities, " "), strings.Join(paper.Figure2Entities, " "); got != want {
		t.Errorf("entities = %s\nwant %s", got, want)
	}

	var rels []string
	for _, r := range m.Relationships {
		rels = append(rels, r.Name)
	}
	sort.Strings(rels)
	want := append([]string(nil), paper.Figure2Relationships...)
	sort.Strings(want)
	if got := strings.Join(rels, " "); got != strings.Join(want, " ") {
		t.Errorf("relationships = %s\nwant %s", got, strings.Join(want, " "))
	}

	// Figure 2 details.
	book := m.Entity("book")
	if a, ok := book.Attribute("booktitle"); !ok || a.Origin != er.Distilled || !a.Required {
		t.Errorf("book.booktitle = %+v", a)
	}
	author := m.Entity("author")
	if a, ok := author.KeyAttribute(); !ok || a.Name != "id" {
		t.Errorf("author key = %+v, %v", a, ok)
	}
	name := m.Entity("name")
	if a, ok := name.Attribute("firstname"); !ok || a.Required {
		t.Errorf("name.firstname should be optional, got %+v", a)
	}
	if a, ok := name.Attribute("lastname"); !ok || !a.Required {
		t.Errorf("name.lastname should be required, got %+v", a)
	}
	ca := m.Entity("contactauthor")
	if !ca.Existence {
		t.Error("contactauthor should be an existence entity")
	}
	aff := m.Entity("affiliation")
	if !aff.AnyContent {
		t.Error("affiliation should be AnyContent")
	}

	ng1 := m.Relationship("NG1")
	if ng1 == nil || ng1.Kind != er.RelNestedGroup || !ng1.Choice || ng1.Parent != "book" {
		t.Fatalf("NG1 = %+v", ng1)
	}
	if got := strings.Join(ng1.Targets(), ","); got != "author,editor" {
		t.Errorf("NG1 targets = %s", got)
	}
	if ng1.Arcs[0].Occ != dtd.OccZeroPlus {
		t.Errorf("NG1 author occurrence = %v, want *", ng1.Arcs[0].Occ)
	}

	ng2 := m.Relationship("NG2")
	if ng2.Choice {
		t.Error("NG2 should be a sequence group")
	}
	if ng2.GroupOcc != dtd.OccOnePlus {
		t.Errorf("NG2 group occurrence = %v, want +", ng2.GroupOcc)
	}
	if got := strings.Join(ng2.Targets(), ","); got != "author,affiliation" {
		t.Errorf("NG2 targets = %s", got)
	}

	ng3 := m.Relationship("NG3")
	if !ng3.Choice || ng3.GroupOcc != dtd.OccZeroPlus {
		t.Errorf("NG3 = choice %v occ %v, want choice *", ng3.Choice, ng3.GroupOcc)
	}

	ref := m.Relationship("authorid")
	if ref == nil || ref.Kind != er.RelReference || !ref.Choice {
		t.Fatalf("authorid = %+v", ref)
	}
	if ref.Parent != "contactauthor" || len(ref.Arcs) != 1 || ref.Arcs[0].Target != "author" {
		t.Errorf("authorid reference shape = %+v", ref)
	}
	if ref.Multiple {
		t.Error("IDREF (not IDREFS) should not be Multiple")
	}

	nname := m.Relationship("Nname")
	if nname.Kind != er.RelNested || nname.Parent != "author" || nname.Arcs[0].Target != "name" {
		t.Errorf("Nname = %+v", nname)
	}
}

func TestStep1DefineGroupElements(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)
	logical, err := d.Logical()
	if err != nil {
		t.Fatal(err)
	}
	grouped, groups, err := DefineGroupElements(logical, "G")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	wantGroups := []struct {
		name, parent, particle string
		occ                    dtd.Occurrence
	}{
		{"G1", "book", "(author* | editor)", dtd.OccOnce},
		{"G2", "article", "(author, affiliation?)", dtd.OccOnePlus},
		{"G3", "editor", "(book | monograph)", dtd.OccZeroPlus},
	}
	for i, w := range wantGroups {
		g := groups[i]
		if g.Name != w.name || g.Parent != w.parent || g.Particle.String() != w.particle || g.Occ != w.occ {
			t.Errorf("group %d = {%s %s %s %v}, want {%s %s %s %v}",
				i, g.Name, g.Parent, g.Particle.String(), g.Occ,
				w.name, w.parent, w.particle, w.occ)
		}
	}
	if got := grouped.Element("book").Content.String(); got != "(booktitle, G1)" {
		t.Errorf("book after step 1 = %q", got)
	}
	if got := grouped.Element("article").Content.String(); got != "(title, G2+, contactauthor?)" {
		t.Errorf("article after step 1 = %q", got)
	}
	if got := grouped.Element("editor").Content.String(); got != "(G3*)" {
		t.Errorf("editor after step 1 = %q", got)
	}
}

func TestStep1Fixpoint(t *testing.T) {
	// Deeply nested groups require several passes.
	d := dtd.MustParse(`<!ELEMENT x (a, (b, (c | (d, e))))> <!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY><!ELEMENT e EMPTY>`)
	grouped, groups, err := DefineGroupElements(d, "G")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// No element may still contain a group.
	for _, name := range grouped.ElementOrder {
		decl := grouped.Elements[name]
		if decl.Content.Kind != dtd.ContentChildren {
			continue
		}
		for _, ch := range decl.Content.Particle.Children {
			if ch.IsGroup() {
				t.Errorf("element %q still contains group %s", name, ch)
			}
		}
	}
}

func TestStep1ChoiceRootExtracted(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT x (a | b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>`)
	grouped, groups, err := DefineGroupElements(d, "G")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if got := grouped.Element("x").Content.String(); got != "(G1)" {
		t.Errorf("x = %q", got)
	}
	if got := groups[0].Particle.String(); got != "(a | b)" {
		t.Errorf("G1 = %q", got)
	}
}

func TestStep1RepeatingRootExtracted(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT x (a, b)+><!ELEMENT a EMPTY><!ELEMENT b EMPTY>`)
	grouped, groups, err := DefineGroupElements(d, "G")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Occ != dtd.OccOnePlus {
		t.Fatalf("groups = %+v", groups)
	}
	// The reference keeps the group's occurrence (as article keeps G2+).
	if got := grouped.Element("x").Content.String(); got != "(G1+)" {
		t.Errorf("x = %q", got)
	}
}

func TestStep1PrefixCollision(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT G1 EMPTY><!ELEMENT x (a, (b | c))><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>`)
	if _, _, err := DefineGroupElements(d, "G"); err == nil {
		t.Fatal("want collision error")
	}
	if _, _, err := DefineGroupElements(d, "Grp"); err != nil {
		t.Fatalf("alternate prefix should work: %v", err)
	}
}

func TestStep2Distill(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (a, b?, c*, d)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ATTLIST d k CDATA #IMPLIED>
`)
	out, entries, err := DistillAttributes(d)
	if err != nil {
		t.Fatal(err)
	}
	// a and b distilled; c repeats; d has its own attributes.
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Attr != "a" || entries[0].Default != dtd.DefRequired || entries[0].Pos != 0 {
		t.Errorf("entry a = %+v", entries[0])
	}
	if entries[1].Attr != "b" || entries[1].Default != dtd.DefImplied || entries[1].Pos != 1 {
		t.Errorf("entry b = %+v", entries[1])
	}
	if got := out.Element("r").Content.String(); got != "(c*, d)" {
		t.Errorf("r after distill = %q", got)
	}
	if _, ok := out.Att("r", "a"); !ok {
		t.Error("distilled attribute a missing")
	}
	// a and b declarations dropped; c and d retained.
	if out.Element("a") != nil || out.Element("b") != nil {
		t.Error("fully distilled elements should be dropped")
	}
	if out.Element("c") == nil || out.Element("d") == nil {
		t.Error("repeating/attributed elements must stay")
	}
}

func TestStep2NameClashKeepsElement(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (a)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST r a CDATA #IMPLIED>
`)
	out, entries, err := DistillAttributes(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("should not distill over an existing attribute: %+v", entries)
	}
	if got := out.Element("r").Content.String(); got != "(a)" {
		t.Errorf("r = %q", got)
	}
}

func TestSkipDistillOption(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)
	res, err := MapWith(d, Options{SkipDistill: true})
	if err != nil {
		t.Fatal(err)
	}
	// booktitle remains an entity with a NESTED relationship.
	if res.Model.Entity("booktitle") == nil {
		t.Error("booktitle should stay an entity with SkipDistill")
	}
	if res.Model.Relationship("Nbooktitle") == nil {
		t.Error("Nbooktitle relationship missing")
	}
	if _, ok := res.Model.Entity("book").Attribute("booktitle"); ok {
		t.Error("book should not gain a booktitle attribute with SkipDistill")
	}
	// PCDATA leaves must be flagged as text-bearing.
	if !res.Model.Entity("booktitle").PCDataText {
		t.Error("booktitle should be PCDataText")
	}
}

func TestMixedContentMapping(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT para (#PCDATA | em | link)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT link EMPTY>
<!ATTLIST link href CDATA #REQUIRED>
`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	para := res.Model.Entity("para")
	if para == nil || !para.PCDataText {
		t.Fatalf("para = %+v", para)
	}
	rels := res.Model.RelationshipsOf("para")
	if len(rels) != 1 || rels[0].Kind != er.RelNestedGroup || !rels[0].Choice {
		t.Fatalf("para rels = %+v", rels)
	}
	if rels[0].GroupOcc != dtd.OccZeroPlus {
		t.Errorf("mixed group occurrence = %v", rels[0].GroupOcc)
	}
	if got := strings.Join(rels[0].Targets(), ","); got != "em,link" {
		t.Errorf("mixed targets = %s", got)
	}
}

func TestIDREFSBecomesMultipleReference(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (item*)>
<!ELEMENT item EMPTY>
<!ATTLIST item id ID #REQUIRED see IDREFS #IMPLIED>
`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Model.Relationship("see")
	if ref == nil || !ref.Multiple {
		t.Fatalf("see = %+v", ref)
	}
}

func TestIDREFWithoutIDTargetsStaysAttribute(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc EMPTY>
<!ATTLIST doc ref IDREF #IMPLIED>
`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Relationships) != 0 {
		t.Errorf("relationships = %+v", res.Model.Relationships)
	}
	if _, ok := res.Model.Entity("doc").Attribute("ref"); !ok {
		t.Error("dangling IDREF should remain an attribute")
	}
}

func TestRecursiveDTD(t *testing.T) {
	// editor -> book -> editor recursion must terminate and validate.
	res := mapPaper(t)
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	parents := res.Model.NestingParentsOf("book")
	if len(parents) != 1 || parents[0].Name != "NG3" {
		t.Errorf("book nesting parents = %+v", parents)
	}
	authorParents := res.Model.NestingParentsOf("author")
	if len(authorParents) != 3 { // NG1, NG2, Nauthor
		t.Errorf("author has %d nesting parents, want 3", len(authorParents))
	}
}

func TestNestedNameCollision(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (x)>
<!ELEMENT b (x)>
<!ELEMENT x (#PCDATA)>
<!ATTLIST x k CDATA #IMPLIED>
`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range res.Model.Relationships {
		if names[r.Name] {
			t.Fatalf("duplicate relationship name %q", r.Name)
		}
		names[r.Name] = true
	}
	if !names["Nx"] {
		t.Error("first nesting should be Nx")
	}
	if !names["Nb_x"] {
		t.Errorf("second nesting should be parent-qualified, got %v", names)
	}
}

func TestMetadata(t *testing.T) {
	res := mapPaper(t)
	md := res.Metadata

	// Schema ordering for book: booktitle (distilled) then NG1 (group).
	ord := md.OrderOf("book")
	if len(ord) != 2 {
		t.Fatalf("book order = %+v", ord)
	}
	if ord[0].Item != "booktitle" || ord[0].Kind != ItemDistilled || ord[0].Pos != 0 {
		t.Errorf("book[0] = %+v", ord[0])
	}
	if ord[1].Item != "NG1" || ord[1].Kind != ItemGroup || ord[1].Pos != 1 {
		t.Errorf("book[1] = %+v", ord[1])
	}

	// Group content ordering recorded under the relationship name.
	ng2 := md.OrderOf("NG2")
	if len(ng2) != 2 || ng2[0].Item != "author" || ng2[1].Item != "affiliation" {
		t.Errorf("NG2 order = %+v", ng2)
	}

	// Occurrences: article's NG2 carries +, affiliation inside NG2 is ?.
	if occ := md.OccurrenceOf("article", "NG2"); occ != dtd.OccOnePlus {
		t.Errorf("article/NG2 occurrence = %v", occ)
	}
	if occ := md.OccurrenceOf("NG2", "affiliation"); occ != dtd.OccOptional {
		t.Errorf("NG2/affiliation occurrence = %v", occ)
	}
	if occ := md.OccurrenceOf("NG1", "author"); occ != dtd.OccZeroPlus {
		t.Errorf("NG1/author occurrence = %v", occ)
	}
	if occ := md.OccurrenceOf("monograph", "author"); occ != dtd.OccOnce {
		t.Errorf("monograph/author occurrence = %v", occ)
	}

	// Existence: contactauthor.
	if len(md.Existence) != 1 || md.Existence[0] != "contactauthor" {
		t.Errorf("existence = %v", md.Existence)
	}

	// Distilled entries: booktitle, title(article), title(monograph),
	// firstname, lastname.
	if len(md.Distilled) != 5 {
		t.Errorf("distilled = %+v", md.Distilled)
	}

	// Content-model text preserved for every original element.
	if md.ModelText["book"] != "(booktitle, (author* | editor))" {
		t.Errorf("ModelText[book] = %q", md.ModelText["book"])
	}
	if !strings.Contains(md.Summary(), "order entries") {
		t.Errorf("Summary = %q", md.Summary())
	}
}

func TestInventoryAndDOT(t *testing.T) {
	res := mapPaper(t)
	inv := res.Model.Inventory()
	for _, want := range []string{
		"entity book { booktitle }",
		"entity author { id* }",
		"entity name { firstname?, lastname }",
		"entity contactauthor [existence]",
		"entity affiliation [any]",
		"nested_group NG1: book -> (author* | editor)",
		"nested_group NG2: article -> (author, affiliation?)+",
		"nested Nname: author -> (name)",
		"reference authorid: contactauthor -> (author) via @authorid",
	} {
		if !strings.Contains(inv, want) {
			t.Errorf("inventory missing %q:\n%s", want, inv)
		}
	}
	dot := res.Model.DOT()
	for _, want := range []string{`"book" [shape=box`, `"NG1" [shape=diamond]`, `label="⊕"`, `"book.booktitle"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestDeepChoiceOfSequences(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT x ((a, b) | (c, d))>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>
`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	// x gets one top-level nested group (the choice), whose arcs point at
	// the two intermediate group entities, each with its own sequence
	// group relationship.
	xrels := res.Model.RelationshipsOf("x")
	if len(xrels) != 1 || !xrels[0].Choice {
		t.Fatalf("x rels = %+v", xrels)
	}
	for _, arc := range xrels[0].Arcs {
		sub := res.Model.Entity(arc.Target)
		if sub == nil {
			t.Fatalf("missing intermediate entity %q", arc.Target)
		}
		subRels := res.Model.RelationshipsOf(arc.Target)
		if len(subRels) != 1 || subRels[0].Choice {
			t.Errorf("intermediate %q rels = %+v", arc.Target, subRels)
		}
	}
}

func TestEmptyAndAnyOnlyDTD(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a EMPTY><!ELEMENT b ANY>`)
	res, err := Map(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Entities) != 2 || len(res.Model.Relationships) != 0 {
		t.Errorf("model = %d entities, %d rels", len(res.Model.Entities), len(res.Model.Relationships))
	}
}

func TestConvertedAccessors(t *testing.T) {
	res := mapPaper(t)
	conv := res.Converted
	if conv.Element("book") == nil || conv.Element("nope") != nil {
		t.Error("Element accessor")
	}
	if got := len(conv.RelsOf("monograph")); got != 2 {
		t.Errorf("monograph rels = %d", got)
	}
	if conv.Element("book").Kind.String() != "()" {
		t.Errorf("book kind = %s", conv.Element("book").Kind)
	}
}

func TestStableAcrossRuns(t *testing.T) {
	a := mapPaper(t).Converted.String()
	b := mapPaper(t).Converted.String()
	if a != b {
		t.Error("mapping output not deterministic")
	}
}
