package core

import (
	"strings"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/er"
)

// String renders the converted DTD in the paper's Example 2 notation:
// each element declaration followed by its attribute list and its
// relationship declarations (NESTED_GROUP, NESTED, REFERENCE).
func (c *Converted) String() string {
	var b strings.Builder
	for _, ce := range c.Elements {
		b.WriteString("<!ELEMENT ")
		b.WriteString(ce.Name)
		b.WriteByte(' ')
		b.WriteString(ce.Kind.String())
		b.WriteString(">\n")
		if len(ce.Atts) > 0 {
			b.WriteString("<!ATTLIST ")
			b.WriteString(ce.Name)
			for _, a := range ce.Atts {
				b.WriteByte(' ')
				writeAttDef(&b, a)
			}
			b.WriteString(">\n")
		}
		for _, r := range c.RelsOf(ce.Name) {
			writeRel(&b, r)
		}
	}
	return b.String()
}

func writeAttDef(b *strings.Builder, a dtd.AttDef) {
	b.WriteString(a.Name)
	b.WriteByte(' ')
	switch a.Type {
	case dtd.AttPCData:
		b.WriteString("(#PCDATA)")
	case dtd.AttEnum:
		b.WriteString("(" + strings.Join(a.Enum, " | ") + ")")
	default:
		b.WriteString(a.Type.String())
	}
	b.WriteByte(' ')
	switch a.Default {
	case dtd.DefRequired:
		b.WriteString("#REQUIRED")
	case dtd.DefImplied:
		b.WriteString("#IMPLIED")
	case dtd.DefFixed:
		b.WriteString(`#FIXED "` + a.Value + `"`)
	case dtd.DefValue:
		b.WriteString(`"` + a.Value + `"`)
	}
}

func writeRel(b *strings.Builder, r *Rel) {
	switch r.Kind {
	case er.RelNestedGroup:
		b.WriteString("<!NESTED_GROUP ")
		b.WriteString(r.Name)
		b.WriteByte(' ')
		b.WriteString(r.Parent)
		b.WriteByte(' ')
		b.WriteString(r.Particle.String())
		b.WriteString(">\n")
	case er.RelNested:
		b.WriteString("<!NESTED ")
		b.WriteString(r.Name)
		b.WriteByte(' ')
		b.WriteString(r.Parent)
		b.WriteByte(' ')
		b.WriteString(r.Child)
		b.WriteString(">\n")
	case er.RelReference:
		b.WriteString("<!REFERENCE ")
		b.WriteString(r.Name)
		b.WriteByte(' ')
		b.WriteString(r.Parent)
		b.WriteString(" (")
		b.WriteString(strings.Join(r.Targets, " | "))
		b.WriteString(")>\n")
	}
}
