package core

import (
	"fmt"
	"strings"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/er"
)

// ItemKind classifies one schema-ordering entry.
type ItemKind int

// Schema-order item kinds.
const (
	// ItemElement is a plain nested subelement.
	ItemElement ItemKind = iota + 1
	// ItemGroup is an extracted group (a NESTED_GROUP relationship).
	ItemGroup
	// ItemDistilled is a (#PCDATA) subelement distilled into an attribute.
	ItemDistilled
)

// String returns a short kind name.
func (k ItemKind) String() string {
	switch k {
	case ItemElement:
		return "element"
	case ItemGroup:
		return "group"
	case ItemDistilled:
		return "distilled"
	default:
		return fmt.Sprintf("ItemKind(%d)", int(k))
	}
}

// SchemaOrderEntry records the schema ordering (§3, "Ordering") of one
// content item within its parent element type.
type SchemaOrderEntry struct {
	// Parent is the containing element type, or the NESTED_GROUP
	// relationship name for items inside an extracted group.
	Parent string
	// Pos is the 0-based position in the parent's content sequence.
	Pos int
	// Item is the subelement name, distilled attribute name, or the
	// NESTED_GROUP relationship name for groups.
	Item string
	// Kind classifies the item.
	Kind ItemKind
}

// OccurrenceEntry records the occurrence indicator (§3, "Occurrence") of
// one content item — a property the relational schema cannot express,
// kept as metadata per §5 of the paper.
type OccurrenceEntry struct {
	// Parent is the containing element type or relationship name.
	Parent string
	// Item is the subelement or group the indicator applies to.
	Item string
	// Occ is the indicator.
	Occ dtd.Occurrence
}

// Metadata is the collected §5 metadata: everything about the DTD that
// the ER/relational schema drops, ready to be stored in relational
// tables by the meta package.
type Metadata struct {
	// DTDName labels the source DTD.
	DTDName string
	// ModelText maps each original element type to its content-model
	// text — the highest-fidelity ordering record.
	ModelText map[string]string
	// SchemaOrder lists content positions per parent.
	SchemaOrder []SchemaOrderEntry
	// Occurrence lists occurrence indicators per parent and per group.
	Occurrence []OccurrenceEntry
	// Distilled lists the step-2 attribute foldings.
	Distilled []DistillEntry
	// Existence lists EMPTY (existence-only) element types.
	Existence []string
}

// NewMetadata returns an empty metadata set.
func NewMetadata(name string) *Metadata {
	return &Metadata{DTDName: name, ModelText: make(map[string]string)}
}

// OrderOf returns the schema-order entries for one parent, sorted by
// position.
func (m *Metadata) OrderOf(parent string) []SchemaOrderEntry {
	var out []SchemaOrderEntry
	for _, e := range m.SchemaOrder {
		if e.Parent == parent {
			out = append(out, e)
		}
	}
	return out
}

// OccurrenceOf returns the occurrence indicator recorded for an item
// within a parent, defaulting to exactly-once.
func (m *Metadata) OccurrenceOf(parent, item string) dtd.Occurrence {
	for _, e := range m.Occurrence {
		if e.Parent == parent && e.Item == item {
			return e.Occ
		}
	}
	return dtd.OccOnce
}

// fill populates the metadata from the intermediate mapping results:
// logical supplies content-model text, grouped supplies consistent
// positions (step-1 output, before any distilling removals), and conv
// supplies final relationship names.
func (m *Metadata) fill(logical, grouped *dtd.DTD, groups []GroupDef, distilled []DistillEntry, conv *Converted) {
	for _, name := range logical.ElementOrder {
		m.ModelText[name] = logical.Elements[name].Content.String()
	}

	groupSet := make(map[string]*GroupDef, len(groups))
	for i := range groups {
		groupSet[groups[i].Name] = &groups[i]
	}
	relNameByParticle := make(map[*dtd.Particle]string)
	for _, r := range conv.Rels {
		if r.Kind == er.RelNestedGroup && r.Particle != nil {
			relNameByParticle[r.Particle] = r.Name
		}
	}
	distilledAt := make(map[string]map[string]bool)
	for _, e := range distilled {
		if distilledAt[e.Parent] == nil {
			distilledAt[e.Parent] = make(map[string]bool)
		}
		distilledAt[e.Parent][e.Attr] = true
	}
	m.Distilled = append(m.Distilled, distilled...)

	occSeen := make(map[string]bool)
	addOcc := func(parent, item string, occ dtd.Occurrence) {
		if occ == dtd.OccOnce {
			return
		}
		key := parent + "\x00" + item
		if occSeen[key] {
			return
		}
		occSeen[key] = true
		m.Occurrence = append(m.Occurrence, OccurrenceEntry{Parent: parent, Item: item, Occ: occ})
	}

	record := func(parent string, root *dtd.Particle) {
		for pos, ch := range root.Children {
			if ch.Kind != dtd.PKName {
				continue
			}
			entry := SchemaOrderEntry{Parent: parent, Pos: pos, Item: ch.Name, Kind: ItemElement}
			if g, isGroup := groupSet[ch.Name]; isGroup {
				entry.Kind = ItemGroup
				if n, ok := relNameByParticle[g.Particle]; ok {
					entry.Item = n
				}
			} else if distilledAt[parent] != nil && distilledAt[parent][ch.Name] {
				entry.Kind = ItemDistilled
			}
			m.SchemaOrder = append(m.SchemaOrder, entry)
			addOcc(parent, entry.Item, ch.Occ)
		}
	}

	for _, name := range grouped.ElementOrder {
		decl := grouped.Elements[name]
		if decl.Content.Kind == dtd.ContentEmpty {
			m.Existence = append(m.Existence, name)
		}
		if decl.Content.Kind != dtd.ContentChildren || decl.Content.Particle == nil {
			continue
		}
		parentLabel := name
		if g, isGroup := groupSet[name]; isGroup {
			if n, ok := relNameByParticle[g.Particle]; ok {
				parentLabel = n
			}
		}
		record(parentLabel, decl.Content.Particle)
	}

	// Mixed-content relationships are not visible in the grouped DTD's
	// particles; record their occurrence from the converted form.
	for _, r := range conv.Rels {
		if r.Kind == er.RelNestedGroup {
			addOcc(r.Parent, r.Name, r.GroupOcc)
		}
	}
}

// Summary renders the metadata compactly for reports.
func (m *Metadata) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metadata for %s: %d order entries, %d occurrence entries, %d distilled, %d existence\n",
		m.DTDName, len(m.SchemaOrder), len(m.Occurrence), len(m.Distilled), len(m.Existence))
	return b.String()
}
