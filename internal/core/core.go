// Package core implements the paper's primary contribution: the
// four-step algorithm of Lee, Mitchell and Zhang ("Integrating XML Data
// with Relational Databases", 2000, Figure 1) that converts a logical
// DTD into an Entity-Relationship model:
//
//  1. Define Group Elements — every parenthesized group embedded in a
//     content model becomes a fresh virtual element (G1, G2, ...),
//     iterated until no element contains a group.
//  2. Distill Attributes — a (#PCDATA) subelement occurring at most once
//     is folded into an attribute of its parent ((#PCDATA) #REQUIRED, or
//     #IMPLIED when the subelement was optional).
//  3. Identify Relationships — nesting structure is replaced by explicit
//     NESTED_GROUP, NESTED and REFERENCE declarations, leaving element
//     declarations empty.
//  4. Generate Diagram — elements become entities, attribute lists
//     become entity attributes, and the three declaration kinds become
//     ER relationship nodes (choice arcs marked as in the paper's
//     Figure 2).
//
// Ordering, occurrence and existence properties that the ER (and
// relational) model cannot express are captured in a Metadata value, as
// §5 of the paper prescribes, and later stored as relational tables.
//
// Deviations from the paper's informal description, chosen to keep the
// mapping total on arbitrary DTDs (documented in DESIGN.md):
//
//   - A root group that is a choice, or that carries an occurrence
//     indicator, is itself extracted in step 1, so that after step 1
//     every content model is a plain sequence of element references.
//   - Step 2 only distills a subelement when it declares no attributes
//     of its own and is not the target of any ID reference; otherwise
//     folding it into a parent attribute would drop information.
//   - Mixed content (#PCDATA | a | b)* is treated as a choice group with
//     zero-or-more occurrence, and the element is flagged as retaining
//     text content.
//   - NESTED relationship names follow the paper (N + child name) with
//     parent-qualified names on collision.
package core

import (
	"fmt"
	"strconv"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/er"
)

// Options tunes the mapping algorithm.
type Options struct {
	// SkipDistill disables step 2 (the attribute-distilling ablation of
	// experiment E10). Default false: distilling on, as in the paper.
	SkipDistill bool
	// GroupPrefix names synthesized group elements; default "G".
	GroupPrefix string
	// NestedGroupPrefix names nested-group relationships; default "NG".
	NestedGroupPrefix string
}

func (o Options) groupPrefix() string {
	if o.GroupPrefix == "" {
		return "G"
	}
	return o.GroupPrefix
}

func (o Options) ngPrefix() string {
	if o.NestedGroupPrefix == "" {
		return "NG"
	}
	return o.NestedGroupPrefix
}

// Result is the complete output of the mapping pipeline.
type Result struct {
	// Original is the input logical DTD (after entity substitution).
	Original *dtd.DTD
	// Grouped is the DTD after step 1 (groups extracted as G elements).
	Grouped *dtd.DTD
	// Distilled is the DTD after step 2.
	Distilled *dtd.DTD
	// Converted is the declaration set after step 3 (the paper's
	// Example 2 form).
	Converted *Converted
	// Model is the ER diagram produced by step 4.
	Model *er.Model
	// Metadata carries the ordering/occurrence/existence information the
	// relational schema cannot express.
	Metadata *Metadata
	// Groups lists the virtual elements extracted in step 1, in creation
	// order; loaders use them to resolve group names to their bodies.
	Groups []GroupDef
}

// Map runs all four steps with default options.
func Map(d *dtd.DTD) (*Result, error) { return MapWith(d, Options{}) }

// MapWith runs all four steps with explicit options.
func MapWith(d *dtd.DTD, opts Options) (*Result, error) {
	logical, err := d.Logical()
	if err != nil {
		return nil, fmt.Errorf("core: normalizing to logical DTD: %w", err)
	}
	res := &Result{Original: d, Metadata: NewMetadata(d.Name)}

	grouped, groups, err := DefineGroupElements(logical, opts.groupPrefix())
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (define group elements): %w", err)
	}
	res.Grouped = grouped
	res.Groups = groups

	distilledDTD := grouped
	var distilled []DistillEntry
	if !opts.SkipDistill {
		distilledDTD, distilled, err = DistillAttributes(grouped)
		if err != nil {
			return nil, fmt.Errorf("core: step 2 (distill attributes): %w", err)
		}
	}
	res.Distilled = distilledDTD

	conv, err := IdentifyRelationships(distilledDTD, groups, opts.ngPrefix())
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (identify relationships): %w", err)
	}
	res.Converted = conv

	model, err := GenerateDiagram(conv)
	if err != nil {
		return nil, fmt.Errorf("core: step 4 (generate diagram): %w", err)
	}
	res.Model = model

	res.Metadata.fill(logical, grouped, groups, distilled, conv)
	return res, nil
}

// GroupDef records one group extracted in step 1.
type GroupDef struct {
	// Name is the synthesized element name (G1, G2, ...).
	Name string
	// Parent is the element whose content model contained the group.
	Parent string
	// Particle is the group's content (occurrence normalized to once;
	// the group's own indicator is recorded in Occ).
	Particle *dtd.Particle
	// Occ is the occurrence indicator the group carried at its site.
	Occ dtd.Occurrence
}

// DefineGroupElements is step 1: extract every embedded group of every
// content model into a fresh virtual element, iterating until no element
// contains a group. It returns the rewritten DTD and the extracted
// groups in creation order. Beyond the paper's description, a root group
// that is a choice or carries an occurrence indicator is also extracted,
// so that afterwards every element content is a plain sequence of names.
func DefineGroupElements(d *dtd.DTD, prefix string) (*dtd.DTD, []GroupDef, error) {
	out := d.Clone()
	var groups []GroupDef
	counter := 0
	isGroup := make(map[string]bool)

	newGroup := func(parent string, g *dtd.Particle) (*dtd.Particle, error) {
		counter++
		name := prefix + strconv.Itoa(counter)
		isGroup[name] = true
		if out.Element(name) != nil {
			return nil, fmt.Errorf("synthesized group name %q collides with a declared element; choose another GroupPrefix", name)
		}
		body := g.Clone()
		occ := body.Occ
		body.Occ = dtd.OccOnce
		def := GroupDef{Name: name, Parent: parent, Particle: body, Occ: occ}
		groups = append(groups, def)
		if err := out.AddElement(&dtd.ElementDecl{
			Name:    name,
			Content: dtd.ContentModel{Kind: dtd.ContentChildren, Particle: body},
		}); err != nil {
			return nil, err
		}
		return &dtd.Particle{Kind: dtd.PKName, Name: name, Occ: occ}, nil
	}

	// Iterate to fixpoint: extracting a group may expose another level.
	for {
		changed := false
		// Snapshot order: newly added G elements are processed in later
		// passes of the loop.
		names := append([]string(nil), out.ElementOrder...)
		for _, name := range names {
			decl := out.Elements[name]
			if decl.Content.Kind != dtd.ContentChildren || decl.Content.Particle == nil {
				continue
			}
			root := decl.Content.Particle
			// Extract embedded (non-root) groups, left to right, one
			// level per pass.
			for i, ch := range root.Children {
				if ch.IsGroup() {
					ref, err := newGroup(name, ch)
					if err != nil {
						return nil, nil, err
					}
					root.Children[i] = ref
					changed = true
				}
			}
			// Normalize the root of *declared* elements: extract it too
			// when it is a choice or repeats, so the remaining root is a
			// once-occurring sequence. Synthesized group elements keep
			// their root as-is — it is the group body.
			if isGroup[name] {
				continue
			}
			if (root.Kind == dtd.PKChoice && len(root.Children) > 1) || root.Occ != dtd.OccOnce {
				ref, err := newGroup(name, root)
				if err != nil {
					return nil, nil, err
				}
				decl.Content.Particle = &dtd.Particle{Kind: dtd.PKSequence, Occ: dtd.OccOnce, Children: []*dtd.Particle{ref}}
				changed = true
			} else if root.Kind == dtd.PKChoice {
				// Single-member choice is a sequence.
				root.Kind = dtd.PKSequence
			}
		}
		if !changed {
			return out, groups, nil
		}
	}
}

// DistillEntry records one (#PCDATA) subelement folded into an attribute
// by step 2.
type DistillEntry struct {
	// Parent is the element that gained the attribute.
	Parent string
	// Attr is the attribute (and original subelement) name.
	Attr string
	// Pos is the subelement's position among the parent's content
	// children before removal (0-based), preserved as schema-ordering
	// metadata.
	Pos int
	// Default is DefImplied when the subelement was optional, else
	// DefRequired.
	Default dtd.AttDefault
}

// DistillAttributes is step 2: fold (#PCDATA) subelements that occur at
// most once into attributes of their parent. A subelement is only
// distilled when it has no attribute declarations of its own; otherwise
// information would be lost. Element type declarations that become
// entirely unreferenced are removed from the result.
func DistillAttributes(d *dtd.DTD) (*dtd.DTD, []DistillEntry, error) {
	out := d.Clone()
	var entries []DistillEntry

	distillable := func(name string) bool {
		decl := out.Element(name)
		if decl == nil || !decl.Content.IsPCDataOnly() {
			return false
		}
		return len(out.Atts(name)) == 0
	}

	for _, name := range out.ElementOrder {
		decl := out.Elements[name]
		if decl.Content.Kind != dtd.ContentChildren || decl.Content.Particle == nil {
			continue
		}
		root := decl.Content.Particle
		// After step 1 the root is a once-occurring sequence of names;
		// only such roots are safe to distill from (a member of a choice
		// encodes which alternative was taken, so it must stay).
		if root.Kind != dtd.PKSequence || root.Occ != dtd.OccOnce {
			continue
		}
		var kept []*dtd.Particle
		for pos, ch := range root.Children {
			if ch.Kind == dtd.PKName && !ch.Occ.Repeatable() && distillable(ch.Name) {
				def := dtd.AttDef{Name: ch.Name, Type: dtd.AttPCData, Default: dtd.DefRequired}
				if ch.Occ.Optional() {
					def.Default = dtd.DefImplied
				}
				if _, exists := out.Att(name, ch.Name); exists {
					// An XML attribute with the same name already exists;
					// distilling would clash, so keep the subelement.
					kept = append(kept, ch)
					continue
				}
				out.AddAttDefs(name, []dtd.AttDef{def})
				entries = append(entries, DistillEntry{
					Parent: name, Attr: ch.Name, Pos: pos, Default: def.Default,
				})
				continue
			}
			kept = append(kept, ch)
		}
		root.Children = kept
	}

	// Drop PCDATA element declarations that are no longer referenced
	// anywhere (they were distilled at every site).
	referenced := make(map[string]bool)
	for _, n := range out.ReferencedNames() {
		referenced[n] = true
	}
	distilledSomewhere := make(map[string]bool)
	for _, e := range entries {
		distilledSomewhere[e.Attr] = true
	}
	var order []string
	for _, name := range out.ElementOrder {
		if distilledSomewhere[name] && !referenced[name] {
			delete(out.Elements, name)
			continue
		}
		order = append(order, name)
	}
	out.ElementOrder = order
	return out, entries, nil
}

// ConvKind is the residual content category of a converted element.
type ConvKind int

// Converted element content categories.
const (
	// ConvBare is the paper's "()": all content moved to relationships.
	ConvBare ConvKind = iota + 1
	// ConvEmpty is a declared-EMPTY (existence) element.
	ConvEmpty
	// ConvAny is a declared-ANY element.
	ConvAny
	// ConvPCData is an element retaining #PCDATA text content.
	ConvPCData
)

// String returns the converted-DTD notation for the kind.
func (k ConvKind) String() string {
	switch k {
	case ConvBare:
		return "()"
	case ConvEmpty:
		return "EMPTY"
	case ConvAny:
		return "ANY"
	case ConvPCData:
		return "(#PCDATA)"
	default:
		return fmt.Sprintf("ConvKind(%d)", int(k))
	}
}

// ConvElement is one element declaration of the converted DTD.
type ConvElement struct {
	// Name is the element type name.
	Name string
	// Kind is the residual content category.
	Kind ConvKind
	// Atts are the element's attributes (original plus distilled, minus
	// IDREF attributes that became REFERENCE declarations).
	Atts []dtd.AttDef
	// MixedText marks elements whose relationships came from mixed
	// content, so they hold interleaved text as well.
	MixedText bool
}

// Rel is one relationship declaration of the converted DTD.
type Rel struct {
	// Kind discriminates NESTED_GROUP / NESTED / REFERENCE.
	Kind er.RelKind
	// Name is the declaration name (NG1, Nauthor, authorid, ...).
	Name string
	// Parent is the element the relationship belongs to.
	Parent string
	// Particle is the group content for NESTED_GROUP (flat: every child
	// is a name).
	Particle *dtd.Particle
	// Child and ChildOcc describe the single target of NESTED.
	Child    string
	ChildOcc dtd.Occurrence
	// GroupOcc is the occurrence the group reference carried in the
	// parent (metadata).
	GroupOcc dtd.Occurrence
	// ViaAttr is the IDREF attribute name for REFERENCE.
	ViaAttr string
	// Targets are the candidate entities of a REFERENCE (all ID-carrying
	// element types).
	Targets []string
	// Multiple marks IDREFS (zero or more targets per instance).
	Multiple bool
	// Pos is the position of the relationship's source item among the
	// parent's original content children (schema ordering metadata); -1
	// for references, which are attributes and carry no order.
	Pos int
}

// Converted is the full declaration set after step 3 — the paper's
// Example 2 representation.
type Converted struct {
	// Name labels the converted DTD.
	Name string
	// Elements in original declaration order.
	Elements []*ConvElement
	// Rels in creation order (grouped after their parent element when
	// serialized).
	Rels []*Rel

	byElement map[string]*ConvElement
}

// Element returns the named converted element, or nil.
func (c *Converted) Element(name string) *ConvElement { return c.byElement[name] }

// RelsOf returns the relationships declared for a parent element, in
// creation order.
func (c *Converted) RelsOf(parent string) []*Rel {
	var out []*Rel
	for _, r := range c.Rels {
		if r.Parent == parent {
			out = append(out, r)
		}
	}
	return out
}

// IdentifyRelationships is step 3: replace structural nesting with
// explicit NESTED_GROUP, NESTED and REFERENCE declarations. groups must
// be the extraction list from step 1 so group elements can be renamed to
// relationship declarations in order.
func IdentifyRelationships(d *dtd.DTD, groups []GroupDef, ngPrefix string) (*Converted, error) {
	conv := &Converted{Name: d.Name, byElement: make(map[string]*ConvElement)}
	groupByName := make(map[string]*GroupDef, len(groups))
	ngName := make(map[string]string, len(groups))
	for i := range groups {
		groupByName[groups[i].Name] = &groups[i]
		ngName[groups[i].Name] = ngPrefix + strconv.Itoa(i+1)
	}
	usedRelNames := make(map[string]bool)
	uniqueRelName := func(preferred, fallback string) string {
		name := preferred
		if usedRelNames[name] {
			name = fallback
		}
		for i := 2; usedRelNames[name]; i++ {
			name = fallback + strconv.Itoa(i)
		}
		usedRelNames[name] = true
		return name
	}

	// Pre-claim nested-group names so nested relationships cannot steal
	// them.
	for _, n := range ngName {
		usedRelNames[n] = true
	}

	var addRelErr error
	addNested := func(parent, child string, occ dtd.Occurrence, pos int) {
		name := uniqueRelName("N"+child, "N"+parent+"_"+child)
		conv.Rels = append(conv.Rels, &Rel{
			Kind: er.RelNested, Name: name, Parent: parent,
			Child: child, ChildOcc: occ, Pos: pos,
		})
	}

	idTargets := d.IDElements()

	for _, name := range d.ElementOrder {
		if _, isGroup := groupByName[name]; isGroup {
			continue // group elements become relationship declarations
		}
		decl := d.Elements[name]
		ce := &ConvElement{Name: name}
		switch decl.Content.Kind {
		case dtd.ContentEmpty:
			ce.Kind = ConvEmpty
		case dtd.ContentAny:
			ce.Kind = ConvAny
		case dtd.ContentMixed:
			if decl.Content.IsPCDataOnly() {
				ce.Kind = ConvPCData
			} else {
				// Mixed content: a choice group of the admitted names,
				// zero or more times, plus retained text.
				ce.Kind = ConvBare
				ce.MixedText = true
				children := make([]*dtd.Particle, 0, len(decl.Content.MixedNames))
				for _, n := range decl.Content.MixedNames {
					children = append(children, &dtd.Particle{Kind: dtd.PKName, Name: n, Occ: dtd.OccOnce})
				}
				relName := uniqueRelName("NG"+name, "NG"+name+"_mixed")
				conv.Rels = append(conv.Rels, &Rel{
					Kind: er.RelNestedGroup, Name: relName, Parent: name,
					Particle: &dtd.Particle{Kind: dtd.PKChoice, Occ: dtd.OccOnce, Children: children},
					GroupOcc: dtd.OccZeroPlus,
					Pos:      0,
				})
			}
		case dtd.ContentChildren:
			ce.Kind = ConvBare
			root := decl.Content.Particle
			if root != nil {
				for pos, ch := range root.Children {
					if ch.Kind != dtd.PKName {
						addRelErr = fmt.Errorf("element %q still contains a group after step 1", name)
						break
					}
					if g, ok := groupByName[ch.Name]; ok {
						conv.Rels = append(conv.Rels, &Rel{
							Kind: er.RelNestedGroup, Name: ngName[ch.Name], Parent: name,
							Particle: g.Particle, GroupOcc: ch.Occ, Pos: pos,
						})
						continue
					}
					addNested(name, ch.Name, ch.Occ, pos)
				}
			}
		}
		// Attributes: IDREF/IDREFS become REFERENCE declarations.
		for _, att := range d.Atts(name) {
			if (att.Type == dtd.AttIDREF || att.Type == dtd.AttIDREFS) && len(idTargets) > 0 {
				relName := uniqueRelName(att.Name, name+"_"+att.Name)
				conv.Rels = append(conv.Rels, &Rel{
					Kind: er.RelReference, Name: relName, Parent: name,
					ViaAttr: att.Name, Targets: append([]string(nil), idTargets...),
					Multiple: att.Type == dtd.AttIDREFS,
					Pos:      -1,
				})
				continue
			}
			ce.Atts = append(ce.Atts, att.Clone())
		}
		conv.Elements = append(conv.Elements, ce)
		conv.byElement[name] = ce
	}
	if addRelErr != nil {
		return nil, addRelErr
	}
	// Groups nested directly inside other groups appear as children of a
	// group particle; after step 1 they were themselves extracted, so a
	// group particle may reference another group element. Rewrite those
	// references into nested-group relationships of the *referencing*
	// group's parent chain — the particle keeps the G name otherwise.
	for _, r := range conv.Rels {
		if r.Kind != er.RelNestedGroup || r.Particle == nil {
			continue
		}
		for _, ch := range r.Particle.Children {
			if g, ok := groupByName[ch.Name]; ok {
				// A group inside a group: expose it as a nested-group
				// relationship parented on the synthetic group element.
				// Create the intermediate element so the diagram stays
				// well formed.
				if conv.byElement[g.Name] == nil {
					ce := &ConvElement{Name: g.Name, Kind: ConvBare}
					conv.Elements = append(conv.Elements, ce)
					conv.byElement[g.Name] = ce
					conv.Rels = append(conv.Rels, &Rel{
						Kind: er.RelNestedGroup, Name: ngName[g.Name], Parent: g.Name,
						Particle: g.Particle, GroupOcc: ch.Occ, Pos: 0,
					})
				}
			}
		}
	}
	return conv, nil
}

// GenerateDiagram is step 4: build the ER model from the converted DTD.
func GenerateDiagram(conv *Converted) (*er.Model, error) {
	m := er.NewModel(conv.Name)
	for _, ce := range conv.Elements {
		e := &er.Entity{
			Name:       ce.Name,
			Existence:  ce.Kind == ConvEmpty,
			AnyContent: ce.Kind == ConvAny,
			PCDataText: ce.Kind == ConvPCData || ce.MixedText,
		}
		for _, att := range ce.Atts {
			e.Attributes = append(e.Attributes, er.Attribute{
				Name:     att.Name,
				Required: att.Default == dtd.DefRequired || att.Default == dtd.DefFixed,
				Key:      att.Type == dtd.AttID,
				Origin:   attrOrigin(att),
				XMLType:  att.Type,
			})
		}
		if err := m.AddEntity(e); err != nil {
			return nil, err
		}
	}
	for _, r := range conv.Rels {
		rel := &er.Relationship{
			Name:     r.Name,
			Kind:     r.Kind,
			Parent:   r.Parent,
			GroupOcc: r.GroupOcc,
			ViaAttr:  r.ViaAttr,
			Multiple: r.Multiple,
		}
		switch r.Kind {
		case er.RelNestedGroup:
			rel.Choice = r.Particle.Kind == dtd.PKChoice
			for _, ch := range r.Particle.Children {
				rel.Arcs = append(rel.Arcs, er.Arc{Target: ch.Name, Occ: ch.Occ})
			}
		case er.RelNested:
			rel.Arcs = []er.Arc{{Target: r.Child, Occ: r.ChildOcc}}
		case er.RelReference:
			rel.Choice = true
			rel.Attributes = []er.Attribute{{
				Name: r.ViaAttr, Origin: er.FromXMLAttr, XMLType: dtd.AttIDREF,
			}}
			for _, t := range r.Targets {
				rel.Arcs = append(rel.Arcs, er.Arc{Target: t, Occ: dtd.OccOnce})
			}
		}
		if err := m.AddRelationship(rel); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func attrOrigin(att dtd.AttDef) er.AttrOrigin {
	if att.Type == dtd.AttPCData {
		return er.Distilled
	}
	return er.FromXMLAttr
}
