package dtd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrExternalEntity is returned when a DTD references an external
// (parameter) entity and no Resolver was supplied to fetch it.
var ErrExternalEntity = errors.New("dtd: external entity referenced but no resolver configured")

// maxExpansionDepth bounds nested entity expansion to defeat recursive
// ("billion laughs") entity definitions.
const maxExpansionDepth = 64

// maxExpansionBytes bounds the total amount of replacement text a single
// parse may inject via entity expansion.
const maxExpansionBytes = 16 << 20

// Resolver fetches the replacement text of an external entity given its
// public and system identifiers. Implementations typically read a local
// file; this module never performs network access itself.
type Resolver func(publicID, systemID string) (string, error)

// ParseOptions configures DTD parsing.
type ParseOptions struct {
	// Resolver fetches external parameter entities. When nil, referencing
	// an external entity fails with ErrExternalEntity unless
	// SkipExternal is set.
	Resolver Resolver
	// SkipExternal makes references to unresolvable external parameter
	// entities expand to nothing instead of failing the parse.
	SkipExternal bool
}

// ParseError describes a DTD syntax error with its source position.
type ParseError struct {
	// Line and Col locate the error (1-based).
	Line, Col int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses the text of a DTD (an external DTD subset: a sequence of
// markup declarations) into a DTD model using default options.
func Parse(src string) (*DTD, error) { return ParseWith(src, ParseOptions{}) }

// MustParse is Parse but panics on error. It is intended for tests and
// for package-level example fixtures only.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseWith parses DTD text with explicit options.
func ParseWith(src string, opts ParseOptions) (*DTD, error) {
	p := &parser{d: New(), opts: opts}
	p.push(src, "<dtd>")
	if err := p.parseSubset(); err != nil {
		return nil, err
	}
	return p.d, nil
}

// input is one frame of the scanner's input stack; entity expansion
// pushes replacement text as a new frame.
type input struct {
	src       string
	pos       int
	line, col int
	name      string // entity or source name, for error messages
}

type parser struct {
	stack    []*input
	d        *DTD
	opts     ParseOptions
	expanded int // total bytes injected by entity expansion
	noPE     bool
}

func (p *parser) push(src, name string) {
	p.stack = append(p.stack, &input{src: src, line: 1, col: 1, name: name})
}

func (p *parser) top() *input {
	for len(p.stack) > 0 {
		in := p.stack[len(p.stack)-1]
		if in.pos < len(in.src) {
			return in
		}
		p.stack = p.stack[:len(p.stack)-1]
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	line, col := 0, 0
	if len(p.stack) > 0 {
		in := p.stack[len(p.stack)-1]
		line, col = in.line, in.col
	}
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// peek returns the next byte without consuming it, or 0 at EOF. It
// transparently expands parameter-entity references.
func (p *parser) peek() (byte, error) {
	for {
		in := p.top()
		if in == nil {
			return 0, nil
		}
		c := in.src[in.pos]
		if c == '%' && !p.noPE && in.pos+1 < len(in.src) && isNameStart(in.src[in.pos+1]) {
			if err := p.expandPE(); err != nil {
				return 0, err
			}
			continue
		}
		return c, nil
	}
}

// next consumes and returns the next byte, or 0 at EOF.
func (p *parser) next() (byte, error) {
	c, err := p.peek()
	if err != nil || c == 0 {
		return 0, err
	}
	in := p.top()
	in.pos++
	if c == '\n' {
		in.line++
		in.col = 1
	} else {
		in.col++
	}
	return c, nil
}

// expandPE consumes a %name; reference at the cursor and pushes its
// replacement text.
func (p *parser) expandPE() error {
	in := p.top()
	in.pos++ // consume '%'
	start := in.pos
	for in.pos < len(in.src) && isNameChar(in.src[in.pos]) {
		in.pos++
	}
	name := in.src[start:in.pos]
	if in.pos >= len(in.src) || in.src[in.pos] != ';' {
		return p.errf("malformed parameter entity reference %%%s", name)
	}
	in.pos++
	ent := p.d.ParamEntities[name]
	if ent == nil {
		return p.errf("undeclared parameter entity %%%s;", name)
	}
	if len(p.stack) >= maxExpansionDepth {
		return p.errf("entity expansion depth exceeds %d (recursive entity %%%s;?)", maxExpansionDepth, name)
	}
	text := ent.Value
	if ent.External {
		switch {
		case p.opts.Resolver != nil:
			var err error
			text, err = p.opts.Resolver(ent.PublicID, ent.SystemID)
			if err != nil {
				return fmt.Errorf("dtd: resolving %%%s; (%s): %w", name, ent.SystemID, err)
			}
		case p.opts.SkipExternal:
			text = ""
		default:
			return fmt.Errorf("%w: %%%s; SYSTEM %q", ErrExternalEntity, name, ent.SystemID)
		}
	}
	// Per XML 1.0 §4.4.8, a parameter entity's replacement text is padded
	// with one space on each side when recognized within the DTD.
	text = " " + text + " "
	p.expanded += len(text)
	if p.expanded > maxExpansionBytes {
		return p.errf("entity expansion exceeds %d bytes", maxExpansionBytes)
	}
	p.push(text, "%"+name+";")
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// skipSpace consumes whitespace (and transparently expands PEs, whose
// padding contributes whitespace). It returns whether any was consumed.
func (p *parser) skipSpace() (bool, error) {
	any := false
	for {
		c, err := p.peek()
		if err != nil {
			return any, err
		}
		if c == 0 || !isSpace(c) {
			return any, nil
		}
		if _, err := p.next(); err != nil {
			return any, err
		}
		any = true
	}
}

// expect consumes the next byte and verifies it.
func (p *parser) expect(want byte) error {
	c, err := p.next()
	if err != nil {
		return err
	}
	if c != want {
		if c == 0 {
			return p.errf("unexpected end of DTD, want %q", string(want))
		}
		return p.errf("unexpected %q, want %q", string(c), string(want))
	}
	return nil
}

// name reads a Name token.
func (p *parser) name() (string, error) {
	c, err := p.peek()
	if err != nil {
		return "", err
	}
	if c == 0 || !isNameStart(c) {
		return "", p.errf("expected a name, found %q", string(c))
	}
	var b strings.Builder
	for {
		c, err := p.peek()
		if err != nil {
			return "", err
		}
		if c == 0 || !isNameChar(c) {
			break
		}
		if _, err := p.next(); err != nil {
			return "", err
		}
		b.WriteByte(c)
	}
	return b.String(), nil
}

// keyword reads an uppercase keyword token (letters only).
func (p *parser) keyword() (string, error) {
	var b strings.Builder
	for {
		c, err := p.peek()
		if err != nil {
			return "", err
		}
		if c < 'A' || c > 'Z' {
			break
		}
		if _, err := p.next(); err != nil {
			return "", err
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "", p.errf("expected a keyword")
	}
	return b.String(), nil
}

// literal reads a quoted literal ("..." or '...'), resolving character
// references. When forEntity is set, parameter entities inside the
// literal are expanded (XML 1.0 EntityValue rules); otherwise they are
// left alone (AttValue rules in the internal subset).
func (p *parser) literal(forEntity bool) (string, error) {
	q, err := p.next()
	if err != nil {
		return "", err
	}
	if q != '"' && q != '\'' {
		return "", p.errf("expected a quoted literal, found %q", string(q))
	}
	savedNoPE := p.noPE
	p.noPE = !forEntity
	defer func() { p.noPE = savedNoPE }()
	var b strings.Builder
	for {
		c, err := p.next()
		if err != nil {
			return "", err
		}
		switch {
		case c == 0:
			return "", p.errf("unterminated literal")
		case c == q:
			return b.String(), nil
		case c == '&':
			s, err := p.charOrEntityRef()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteByte(c)
		}
	}
}

// charOrEntityRef resolves a reference after '&' was consumed. Character
// references and the five predefined entities are replaced; other general
// entity references are preserved verbatim for later expansion.
func (p *parser) charOrEntityRef() (string, error) {
	c, err := p.peek()
	if err != nil {
		return "", err
	}
	if c == '#' {
		if _, err := p.next(); err != nil {
			return "", err
		}
		return p.charRef()
	}
	nm, err := p.name()
	if err != nil {
		return "", err
	}
	if err := p.expect(';'); err != nil {
		return "", err
	}
	switch nm {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	default:
		return "&" + nm + ";", nil
	}
}

// charRef parses the remainder of a character reference after "&#".
func (p *parser) charRef() (string, error) {
	hex := false
	c, err := p.peek()
	if err != nil {
		return "", err
	}
	if c == 'x' {
		hex = true
		if _, err := p.next(); err != nil {
			return "", err
		}
	}
	var digits strings.Builder
	for {
		c, err := p.peek()
		if err != nil {
			return "", err
		}
		if c == ';' {
			break
		}
		if c == 0 {
			return "", p.errf("unterminated character reference")
		}
		if _, err := p.next(); err != nil {
			return "", err
		}
		digits.WriteByte(c)
	}
	if _, err := p.next(); err != nil { // consume ';'
		return "", err
	}
	base := 10
	if hex {
		base = 16
	}
	n, err := strconv.ParseInt(digits.String(), base, 32)
	if err != nil || n < 0 || n > 0x10FFFF {
		return "", p.errf("invalid character reference &#%s;", digits.String())
	}
	return string(rune(n)), nil
}

// parseSubset parses a sequence of markup declarations until EOF.
func (p *parser) parseSubset() error {
	for {
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c == 0 {
			return nil
		}
		if c != '<' {
			return p.errf("unexpected character %q between declarations", string(c))
		}
		if err := p.parseMarkupDecl(); err != nil {
			return err
		}
	}
}

// parseMarkupDecl parses one declaration starting at '<'.
func (p *parser) parseMarkupDecl() error {
	if err := p.expect('<'); err != nil {
		return err
	}
	c, err := p.next()
	if err != nil {
		return err
	}
	switch c {
	case '?':
		return p.skipPI()
	case '!':
		c2, err := p.peek()
		if err != nil {
			return err
		}
		switch c2 {
		case '-':
			return p.skipComment()
		case '[':
			return p.parseConditional()
		}
		kw, err := p.keyword()
		if err != nil {
			return err
		}
		switch kw {
		case "ELEMENT":
			return p.parseElementDecl()
		case "ATTLIST":
			return p.parseAttlistDecl()
		case "ENTITY":
			return p.parseEntityDecl()
		case "NOTATION":
			return p.parseNotationDecl()
		default:
			return p.errf("unknown declaration <!%s", kw)
		}
	default:
		return p.errf("unexpected %q after '<' in DTD", string(c))
	}
}

// skipPI consumes a processing instruction after "<?".
func (p *parser) skipPI() error {
	prev := byte(0)
	for {
		c, err := p.next()
		if err != nil {
			return err
		}
		if c == 0 {
			return p.errf("unterminated processing instruction")
		}
		if prev == '?' && c == '>' {
			return nil
		}
		prev = c
	}
}

// skipComment consumes a comment after "<!" (cursor at first '-').
func (p *parser) skipComment() error {
	p.noPE = true
	defer func() { p.noPE = false }()
	if err := p.expect('-'); err != nil {
		return err
	}
	if err := p.expect('-'); err != nil {
		return err
	}
	dashes := 0
	for {
		c, err := p.next()
		if err != nil {
			return err
		}
		switch {
		case c == 0:
			return p.errf("unterminated comment")
		case c == '-':
			dashes++
		case c == '>' && dashes >= 2:
			return nil
		default:
			dashes = 0
		}
	}
}

// parseConditional parses <![INCLUDE[...]]> / <![IGNORE[...]]> after "<!"
// (cursor at '[').
func (p *parser) parseConditional() error {
	if err := p.expect('['); err != nil {
		return err
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	kw, err := p.keyword()
	if err != nil {
		return err
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	if err := p.expect('['); err != nil {
		return err
	}
	switch kw {
	case "INCLUDE":
		// Parse declarations until the matching "]]>".
		for {
			if _, err := p.skipSpace(); err != nil {
				return err
			}
			c, err := p.peek()
			if err != nil {
				return err
			}
			if c == ']' {
				if err := p.expect(']'); err != nil {
					return err
				}
				if err := p.expect(']'); err != nil {
					return err
				}
				return p.expect('>')
			}
			if c == 0 {
				return p.errf("unterminated INCLUDE section")
			}
			if err := p.parseMarkupDecl(); err != nil {
				return err
			}
		}
	case "IGNORE":
		// Skip to the matching "]]>", honoring nested "<![".
		depth := 1
		p.noPE = true
		defer func() { p.noPE = false }()
		var last2 [2]byte
		for {
			c, err := p.next()
			if err != nil {
				return err
			}
			if c == 0 {
				return p.errf("unterminated IGNORE section")
			}
			if last2[0] == '<' && last2[1] == '!' && c == '[' {
				depth++
			}
			if last2[0] == ']' && last2[1] == ']' && c == '>' {
				depth--
				if depth == 0 {
					return nil
				}
			}
			last2[0], last2[1] = last2[1], c
		}
	default:
		return p.errf("conditional section keyword must be INCLUDE or IGNORE, got %q", kw)
	}
}

// parseElementDecl parses the remainder of <!ELEMENT name contentspec>.
func (p *parser) parseElementDecl() error {
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	nm, err := p.name()
	if err != nil {
		return err
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	model, err := p.contentSpec()
	if err != nil {
		return err
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	if err := p.expect('>'); err != nil {
		return err
	}
	return p.d.AddElement(&ElementDecl{Name: nm, Content: model})
}

// contentSpec parses EMPTY | ANY | Mixed | children.
func (p *parser) contentSpec() (ContentModel, error) {
	c, err := p.peek()
	if err != nil {
		return ContentModel{}, err
	}
	if c != '(' {
		kw, err := p.keyword()
		if err != nil {
			return ContentModel{}, p.errf("expected EMPTY, ANY or '(' in content model")
		}
		switch kw {
		case "EMPTY":
			return ContentModel{Kind: ContentEmpty}, nil
		case "ANY":
			return ContentModel{Kind: ContentAny}, nil
		default:
			return ContentModel{}, p.errf("unknown content keyword %q", kw)
		}
	}
	if err := p.expect('('); err != nil {
		return ContentModel{}, err
	}
	if _, err := p.skipSpace(); err != nil {
		return ContentModel{}, err
	}
	c, err = p.peek()
	if err != nil {
		return ContentModel{}, err
	}
	if c == '#' {
		return p.mixedTail()
	}
	if c == ')' {
		// "()" is not legal XML 1.0 but is the paper's notation for an
		// element whose children were all moved into relationship
		// declarations; accept it as an empty sequence.
		if _, err := p.next(); err != nil {
			return ContentModel{}, err
		}
		occ, err := p.occurrence()
		if err != nil {
			return ContentModel{}, err
		}
		return ContentModel{Kind: ContentChildren, Particle: &Particle{Kind: PKSequence, Occ: occ}}, nil
	}
	particle, err := p.groupTail()
	if err != nil {
		return ContentModel{}, err
	}
	return ContentModel{Kind: ContentChildren, Particle: particle}, nil
}

// mixedTail parses the remainder of a Mixed model after "(" with the
// cursor at '#'.
func (p *parser) mixedTail() (ContentModel, error) {
	if err := p.expect('#'); err != nil {
		return ContentModel{}, err
	}
	kw, err := p.keyword()
	if err != nil {
		return ContentModel{}, err
	}
	if kw != "PCDATA" {
		return ContentModel{}, p.errf("expected #PCDATA, got #%s", kw)
	}
	var names []string
	for {
		if _, err := p.skipSpace(); err != nil {
			return ContentModel{}, err
		}
		c, err := p.next()
		if err != nil {
			return ContentModel{}, err
		}
		switch c {
		case ')':
			// A trailing '*' is required when names are present, optional
			// (and conventional) otherwise.
			c2, err := p.peek()
			if err != nil {
				return ContentModel{}, err
			}
			if c2 == '*' {
				if _, err := p.next(); err != nil {
					return ContentModel{}, err
				}
			} else if len(names) > 0 {
				return ContentModel{}, p.errf("mixed content with element names must end with )*")
			}
			return ContentModel{Kind: ContentMixed, MixedNames: names}, nil
		case '|':
			if _, err := p.skipSpace(); err != nil {
				return ContentModel{}, err
			}
			nm, err := p.name()
			if err != nil {
				return ContentModel{}, err
			}
			names = append(names, nm)
		default:
			return ContentModel{}, p.errf("unexpected %q in mixed content model", string(c))
		}
	}
}

// groupTail parses the remainder of a children group after its opening
// "(" has been consumed, returning the group particle (with any trailing
// occurrence indicator applied).
func (p *parser) groupTail() (*Particle, error) {
	group := &Particle{Occ: OccOnce}
	var sep byte
	for {
		if _, err := p.skipSpace(); err != nil {
			return nil, err
		}
		cp, err := p.cp()
		if err != nil {
			return nil, err
		}
		group.Children = append(group.Children, cp)
		if _, err := p.skipSpace(); err != nil {
			return nil, err
		}
		c, err := p.next()
		if err != nil {
			return nil, err
		}
		switch c {
		case ')':
			switch {
			case sep == '|':
				group.Kind = PKChoice
			default:
				group.Kind = PKSequence
			}
			occ, err := p.occurrence()
			if err != nil {
				return nil, err
			}
			group.Occ = occ
			return group, nil
		case ',', '|':
			if sep != 0 && sep != c {
				return nil, p.errf("cannot mix ',' and '|' in one group")
			}
			sep = c
		case 0:
			return nil, p.errf("unterminated content model group")
		default:
			return nil, p.errf("unexpected %q in content model", string(c))
		}
	}
}

// cp parses one content particle: a name or a nested group, with an
// optional occurrence indicator.
func (p *parser) cp() (*Particle, error) {
	c, err := p.peek()
	if err != nil {
		return nil, err
	}
	if c == '(' {
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return p.groupTail()
	}
	nm, err := p.name()
	if err != nil {
		return nil, err
	}
	occ, err := p.occurrence()
	if err != nil {
		return nil, err
	}
	return &Particle{Kind: PKName, Name: nm, Occ: occ}, nil
}

// occurrence parses an optional trailing ?, * or +.
func (p *parser) occurrence() (Occurrence, error) {
	c, err := p.peek()
	if err != nil {
		return 0, err
	}
	switch c {
	case '?':
		_, err := p.next()
		return OccOptional, err
	case '*':
		_, err := p.next()
		return OccZeroPlus, err
	case '+':
		_, err := p.next()
		return OccOnePlus, err
	default:
		return OccOnce, nil
	}
}

// parseAttlistDecl parses the remainder of <!ATTLIST name attdef*>.
func (p *parser) parseAttlistDecl() error {
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	el, err := p.name()
	if err != nil {
		return err
	}
	var defs []AttDef
	for {
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c == '>' {
			if _, err := p.next(); err != nil {
				return err
			}
			p.d.AddAttDefs(el, defs)
			return nil
		}
		if c == 0 {
			return p.errf("unterminated ATTLIST for element %q", el)
		}
		def, err := p.attDef()
		if err != nil {
			return err
		}
		defs = append(defs, def)
	}
}

// attDef parses one "name type default" triple of an ATTLIST.
func (p *parser) attDef() (AttDef, error) {
	var def AttDef
	nm, err := p.name()
	if err != nil {
		return def, err
	}
	def.Name = nm
	if _, err := p.skipSpace(); err != nil {
		return def, err
	}
	c, err := p.peek()
	if err != nil {
		return def, err
	}
	switch {
	case c == '(':
		if _, err := p.next(); err != nil {
			return def, err
		}
		def.Type = AttEnum
		// The paper's converted-DTD notation also writes (#PCDATA) as an
		// attribute "type"; accept it for round-tripping converted DTDs.
		c2, err := p.peek()
		if err != nil {
			return def, err
		}
		if c2 == '#' {
			if _, err := p.next(); err != nil {
				return def, err
			}
			kw, err := p.keyword()
			if err != nil {
				return def, err
			}
			if kw != "PCDATA" {
				return def, p.errf("unexpected #%s in attribute type", kw)
			}
			if _, err := p.skipSpace(); err != nil {
				return def, err
			}
			if err := p.expect(')'); err != nil {
				return def, err
			}
			def.Type = AttPCData
		} else {
			enum, err := p.enumTail()
			if err != nil {
				return def, err
			}
			def.Enum = enum
		}
	default:
		kw, err := p.keyword()
		if err != nil {
			return def, p.errf("expected attribute type for %q", nm)
		}
		switch kw {
		case "CDATA":
			def.Type = AttCDATA
		case "ID":
			def.Type = AttID
		case "IDREF":
			def.Type = AttIDREF
		case "IDREFS":
			def.Type = AttIDREFS
		case "ENTITY":
			def.Type = AttEntity
		case "ENTITIES":
			def.Type = AttEntities
		case "NMTOKEN":
			def.Type = AttNMToken
		case "NMTOKENS":
			def.Type = AttNMTokens
		case "NOTATION":
			def.Type = AttNotation
			if _, err := p.skipSpace(); err != nil {
				return def, err
			}
			if err := p.expect('('); err != nil {
				return def, err
			}
			enum, err := p.enumTail()
			if err != nil {
				return def, err
			}
			def.Enum = enum
		default:
			return def, p.errf("unknown attribute type %q", kw)
		}
	}
	if _, err := p.skipSpace(); err != nil {
		return def, err
	}
	c, err = p.peek()
	if err != nil {
		return def, err
	}
	switch c {
	case '#':
		if _, err := p.next(); err != nil {
			return def, err
		}
		kw, err := p.keyword()
		if err != nil {
			return def, err
		}
		switch kw {
		case "REQUIRED":
			def.Default = DefRequired
		case "IMPLIED", "IMPLIES": // the paper's Example 2 writes #IMPLIES
			def.Default = DefImplied
		case "FIXED":
			def.Default = DefFixed
			if _, err := p.skipSpace(); err != nil {
				return def, err
			}
			v, err := p.literal(false)
			if err != nil {
				return def, err
			}
			def.Value = v
		default:
			return def, p.errf("unknown attribute default #%s", kw)
		}
	case '"', '\'':
		def.Default = DefValue
		v, err := p.literal(false)
		if err != nil {
			return def, err
		}
		def.Value = v
	default:
		return def, p.errf("expected attribute default for %q", nm)
	}
	return def, nil
}

// enumTail parses "a | b | c)" after the opening parenthesis.
func (p *parser) enumTail() ([]string, error) {
	var out []string
	for {
		if _, err := p.skipSpace(); err != nil {
			return nil, err
		}
		nm, err := p.nmtoken()
		if err != nil {
			return nil, err
		}
		out = append(out, nm)
		if _, err := p.skipSpace(); err != nil {
			return nil, err
		}
		c, err := p.next()
		if err != nil {
			return nil, err
		}
		switch c {
		case ')':
			return out, nil
		case '|':
		default:
			return nil, p.errf("unexpected %q in enumeration", string(c))
		}
	}
}

// nmtoken reads a name token (like a name but any name char may lead).
func (p *parser) nmtoken() (string, error) {
	var b strings.Builder
	for {
		c, err := p.peek()
		if err != nil {
			return "", err
		}
		if c == 0 || !isNameChar(c) {
			break
		}
		if _, err := p.next(); err != nil {
			return "", err
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "", p.errf("expected a name token")
	}
	return b.String(), nil
}

// parseEntityDecl parses the remainder of <!ENTITY ...>.
func (p *parser) parseEntityDecl() error {
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	ent := &EntityDecl{}
	c, err := p.peek()
	if err != nil {
		return err
	}
	if c == '%' {
		// "<!ENTITY % name ..." — the '%' here introduces a parameter
		// entity *declaration*, not a reference (a reference has no
		// following space). Disable PE recognition to consume it.
		p.noPE = true
		if _, err := p.next(); err != nil {
			p.noPE = false
			return err
		}
		p.noPE = false
		ent.Parameter = true
		if _, err := p.skipSpace(); err != nil {
			return err
		}
	}
	nm, err := p.name()
	if err != nil {
		return err
	}
	ent.Name = nm
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	c, err = p.peek()
	if err != nil {
		return err
	}
	switch c {
	case '"', '\'':
		v, err := p.literal(true)
		if err != nil {
			return err
		}
		ent.Value = v
	default:
		kw, err := p.keyword()
		if err != nil {
			return err
		}
		ent.External = true
		switch kw {
		case "SYSTEM":
			if _, err := p.skipSpace(); err != nil {
				return err
			}
			ent.SystemID, err = p.literal(false)
			if err != nil {
				return err
			}
		case "PUBLIC":
			if _, err := p.skipSpace(); err != nil {
				return err
			}
			ent.PublicID, err = p.literal(false)
			if err != nil {
				return err
			}
			if _, err := p.skipSpace(); err != nil {
				return err
			}
			ent.SystemID, err = p.literal(false)
			if err != nil {
				return err
			}
		default:
			return p.errf("expected entity value, SYSTEM or PUBLIC, got %q", kw)
		}
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		c, err = p.peek()
		if err != nil {
			return err
		}
		if c == 'N' {
			kw, err := p.keyword()
			if err != nil {
				return err
			}
			if kw != "NDATA" {
				return p.errf("expected NDATA, got %q", kw)
			}
			if ent.Parameter {
				return p.errf("parameter entity %q may not have NDATA", nm)
			}
			if _, err := p.skipSpace(); err != nil {
				return err
			}
			ent.NDataName, err = p.name()
			if err != nil {
				return err
			}
		}
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	if err := p.expect('>'); err != nil {
		return err
	}
	// Per XML 1.0, the first declaration of an entity binds; later ones
	// are ignored.
	if ent.Parameter {
		if _, dup := p.d.ParamEntities[nm]; !dup {
			p.d.ParamEntities[nm] = ent
		}
	} else {
		if _, dup := p.d.Entities[nm]; !dup {
			p.d.Entities[nm] = ent
		}
	}
	return nil
}

// parseNotationDecl parses the remainder of <!NOTATION ...>.
func (p *parser) parseNotationDecl() error {
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	nm, err := p.name()
	if err != nil {
		return err
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	kw, err := p.keyword()
	if err != nil {
		return err
	}
	not := &NotationDecl{Name: nm}
	switch kw {
	case "SYSTEM":
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		not.SystemID, err = p.literal(false)
		if err != nil {
			return err
		}
	case "PUBLIC":
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		not.PublicID, err = p.literal(false)
		if err != nil {
			return err
		}
		if _, err := p.skipSpace(); err != nil {
			return err
		}
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c == '"' || c == '\'' {
			not.SystemID, err = p.literal(false)
			if err != nil {
				return err
			}
		}
	default:
		return p.errf("expected SYSTEM or PUBLIC in notation, got %q", kw)
	}
	if _, err := p.skipSpace(); err != nil {
		return err
	}
	if err := p.expect('>'); err != nil {
		return err
	}
	if _, dup := p.d.Notations[nm]; dup {
		return p.errf("notation %q declared more than once", nm)
	}
	p.d.Notations[nm] = not
	return nil
}
