package dtd

import (
	"sort"
	"strings"
)

// String renders the DTD as markup declarations in declaration order:
// each element type immediately followed by its attribute list, then
// entity declarations, then notations.
func (d *DTD) String() string {
	var b strings.Builder
	written := make(map[string]bool)
	for _, name := range d.ElementOrder {
		decl := d.Elements[name]
		b.WriteString("<!ELEMENT ")
		b.WriteString(decl.Name)
		b.WriteByte(' ')
		b.WriteString(decl.Content.String())
		b.WriteString(">\n")
		writeAttlist(&b, name, d.Attlists[name])
		written[name] = true
	}
	// Attribute lists for elements that were never declared.
	var orphans []string
	for el := range d.Attlists {
		if !written[el] {
			orphans = append(orphans, el)
		}
	}
	sort.Strings(orphans)
	for _, el := range orphans {
		writeAttlist(&b, el, d.Attlists[el])
	}
	var ents []string
	for n := range d.ParamEntities {
		ents = append(ents, n)
	}
	sort.Strings(ents)
	for _, n := range ents {
		writeEntity(&b, d.ParamEntities[n])
	}
	ents = ents[:0]
	for n := range d.Entities {
		ents = append(ents, n)
	}
	sort.Strings(ents)
	for _, n := range ents {
		writeEntity(&b, d.Entities[n])
	}
	var nots []string
	for n := range d.Notations {
		nots = append(nots, n)
	}
	sort.Strings(nots)
	for _, n := range nots {
		nt := d.Notations[n]
		b.WriteString("<!NOTATION ")
		b.WriteString(nt.Name)
		if nt.PublicID != "" {
			b.WriteString(" PUBLIC ")
			b.WriteString(quote(nt.PublicID))
			if nt.SystemID != "" {
				b.WriteByte(' ')
				b.WriteString(quote(nt.SystemID))
			}
		} else {
			b.WriteString(" SYSTEM ")
			b.WriteString(quote(nt.SystemID))
		}
		b.WriteString(">\n")
	}
	return b.String()
}

func writeAttlist(b *strings.Builder, el string, atts []AttDef) {
	if len(atts) == 0 {
		return
	}
	b.WriteString("<!ATTLIST ")
	b.WriteString(el)
	for _, a := range atts {
		b.WriteByte(' ')
		b.WriteString(a.declString())
	}
	b.WriteString(">\n")
}

// declString renders one attribute definition ("name type default").
func (a AttDef) declString() string {
	var b strings.Builder
	b.WriteString(a.Name)
	b.WriteByte(' ')
	switch a.Type {
	case AttEnum:
		b.WriteByte('(')
		b.WriteString(strings.Join(a.Enum, " | "))
		b.WriteByte(')')
	case AttNotation:
		b.WriteString("NOTATION (")
		b.WriteString(strings.Join(a.Enum, " | "))
		b.WriteByte(')')
	case AttPCData:
		b.WriteString("(#PCDATA)")
	default:
		b.WriteString(a.Type.String())
	}
	b.WriteByte(' ')
	switch a.Default {
	case DefRequired, DefImplied:
		b.WriteString(a.Default.String())
	case DefFixed:
		b.WriteString("#FIXED ")
		b.WriteString(quote(a.Value))
	case DefValue:
		b.WriteString(quote(a.Value))
	}
	return b.String()
}

func writeEntity(b *strings.Builder, e *EntityDecl) {
	b.WriteString("<!ENTITY ")
	if e.Parameter {
		b.WriteString("% ")
	}
	b.WriteString(e.Name)
	b.WriteByte(' ')
	switch {
	case !e.External:
		b.WriteString(quote(e.Value))
	case e.PublicID != "":
		b.WriteString("PUBLIC ")
		b.WriteString(quote(e.PublicID))
		b.WriteByte(' ')
		b.WriteString(quote(e.SystemID))
	default:
		b.WriteString("SYSTEM ")
		b.WriteString(quote(e.SystemID))
	}
	if e.NDataName != "" {
		b.WriteString(" NDATA ")
		b.WriteString(e.NDataName)
	}
	b.WriteString(">\n")
}

// quote wraps a literal in the quoting style that avoids escaping.
func quote(s string) string {
	if !strings.Contains(s, `"`) {
		return `"` + s + `"`
	}
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	return `"` + strings.ReplaceAll(s, `"`, "&quot;") + `"`
}
