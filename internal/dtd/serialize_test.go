package dtd

import (
	"strings"
	"testing"
)

func TestSerializeEntitiesAndNotations(t *testing.T) {
	src := `
<!NOTATION gif SYSTEM "gifviewer">
<!NOTATION tex PUBLIC "pubid" "sysid">
<!NOTATION pubonly PUBLIC "justpub">
<!ENTITY co "ACME">
<!ENTITY ext SYSTEM "chapter1.xml">
<!ENTITY pub PUBLIC "p" "s">
<!ENTITY logo SYSTEM "logo.gif" NDATA gif>
<!ENTITY % pe "a | b">
<!ELEMENT doc (#PCDATA)>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	for _, want := range []string{
		`<!NOTATION gif SYSTEM "gifviewer">`,
		`<!NOTATION tex PUBLIC "pubid" "sysid">`,
		`<!NOTATION pubonly PUBLIC "justpub">`,
		`<!ENTITY co "ACME">`,
		`<!ENTITY ext SYSTEM "chapter1.xml">`,
		`<!ENTITY pub PUBLIC "p" "s">`,
		`<!ENTITY logo SYSTEM "logo.gif" NDATA gif>`,
		`<!ENTITY % pe "a | b">`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized DTD missing %q:\n%s", want, text)
		}
	}
	// Re-parse is stable.
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if d2.String() != text {
		t.Error("serialization not a fixpoint")
	}
}

func TestSerializeAttDefaults(t *testing.T) {
	src := `
<!ELEMENT e EMPTY>
<!ATTLIST e
  a CDATA #REQUIRED
  b CDATA #IMPLIED
  c CDATA #FIXED "1"
  d CDATA "dft"
  f (x | y) "x"
  g NOTATION (n1 | n2) #IMPLIED>
<!NOTATION n1 SYSTEM "s1">
<!NOTATION n2 SYSTEM "s2">
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	for _, want := range []string{
		"a CDATA #REQUIRED",
		"b CDATA #IMPLIED",
		`c CDATA #FIXED "1"`,
		`d CDATA "dft"`,
		`f (x | y) "x"`,
		"g NOTATION (n1 | n2) #IMPLIED",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestSerializeOrphanAttlist(t *testing.T) {
	// An ATTLIST for an element never declared with <!ELEMENT>.
	d, err := Parse(`<!ATTLIST ghost x CDATA #IMPLIED><!ELEMENT real EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	if !strings.Contains(text, "<!ATTLIST ghost x CDATA #IMPLIED>") {
		t.Errorf("orphan attlist lost:\n%s", text)
	}
}

func TestQuoteSelection(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`has "quotes"`, `'has "quotes"'`},
		{`it's`, `"it's"`},
		{`both " and '`, `"both &quot; and '"`},
	}
	for _, c := range cases {
		if got := quote(c.in); got != c.want {
			t.Errorf("quote(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSerializePCDataAttType(t *testing.T) {
	// The converted-DTD pseudo type survives a serialization cycle.
	d := New()
	if err := d.AddElement(&ElementDecl{Name: "e", Content: ContentModel{Kind: ContentEmpty}}); err != nil {
		t.Fatal(err)
	}
	d.AddAttDefs("e", []AttDef{{Name: "x", Type: AttPCData, Default: DefRequired}})
	text := d.String()
	if !strings.Contains(text, "x (#PCDATA) #REQUIRED") {
		t.Errorf("pcdata attr:\n%s", text)
	}
	d2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := d2.Att("e", "x")
	if !ok || a.Type != AttPCData {
		t.Errorf("round-tripped type = %v", a.Type)
	}
}

func TestStringerCoverage(t *testing.T) {
	if ContentEmpty.String() != "EMPTY" || ContentAny.String() != "ANY" ||
		ContentMixed.String() != "mixed" || ContentChildren.String() != "children" {
		t.Error("ContentKind strings")
	}
	if PKName.String() != "name" || PKSequence.String() != "sequence" || PKChoice.String() != "choice" {
		t.Error("ParticleKind strings")
	}
	if AttID.String() != "ID" || AttIDREFS.String() != "IDREFS" || AttNotation.String() != "NOTATION" {
		t.Error("AttType strings")
	}
	if DefRequired.String() != "#REQUIRED" || DefFixed.String() != "#FIXED" || DefValue.String() != "" {
		t.Error("AttDefault strings")
	}
	cm := ContentModel{Kind: ContentMixed, MixedNames: []string{"a", "b"}}
	if cm.String() != "(#PCDATA | a | b)*" {
		t.Errorf("mixed string = %q", cm.String())
	}
	empty := ContentModel{Kind: ContentChildren}
	if empty.String() != "()" {
		t.Errorf("empty children string = %q", empty.String())
	}
}
