// Package dtd implements parsing, modeling, and serialization of XML
// Document Type Definitions (DTDs) as defined by the XML 1.0
// recommendation.
//
// The Go standard library's encoding/xml package tokenizes DOCTYPE
// declarations as opaque directives and provides no DTD model; this
// package supplies the missing substrate. It parses the four declaration
// kinds (ELEMENT, ATTLIST, ENTITY, NOTATION), expands parameter entities
// during scanning, and can normalize a parsed DTD into the "logical DTD"
// form used by the Lee–Mitchell–Zhang mapping algorithm: entity and
// notation declarations substituted away, leaving only element type and
// attribute-list declarations.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Occurrence is the repetition indicator attached to a content particle.
type Occurrence int

// Occurrence indicators from the XML 1.0 content model grammar.
const (
	// OccOnce means the particle appears exactly once (no indicator).
	OccOnce Occurrence = iota + 1
	// OccOptional is the "?" indicator: zero or one occurrence.
	OccOptional
	// OccZeroPlus is the "*" indicator: zero or more occurrences.
	OccZeroPlus
	// OccOnePlus is the "+" indicator: one or more occurrences.
	OccOnePlus
)

// String returns the XML syntax for the occurrence indicator ("", "?",
// "*", or "+").
func (o Occurrence) String() string {
	switch o {
	case OccOptional:
		return "?"
	case OccZeroPlus:
		return "*"
	case OccOnePlus:
		return "+"
	default:
		return ""
	}
}

// Optional reports whether the particle may legally be absent.
func (o Occurrence) Optional() bool { return o == OccOptional || o == OccZeroPlus }

// Repeatable reports whether the particle may legally occur more than once.
func (o Occurrence) Repeatable() bool { return o == OccZeroPlus || o == OccOnePlus }

// ParticleKind discriminates the variants of a content particle.
type ParticleKind int

// Content particle kinds.
const (
	// PKName is a reference to an element type by name.
	PKName ParticleKind = iota + 1
	// PKSequence is a parenthesized sequence group: (a, b, c).
	PKSequence
	// PKChoice is a parenthesized choice group: (a | b | c).
	PKChoice
)

// String returns a short human-readable kind name.
func (k ParticleKind) String() string {
	switch k {
	case PKName:
		return "name"
	case PKSequence:
		return "sequence"
	case PKChoice:
		return "choice"
	default:
		return fmt.Sprintf("ParticleKind(%d)", int(k))
	}
}

// Particle is one node of a content model: either an element name
// reference or a sequence/choice group of child particles, each carrying
// an occurrence indicator.
type Particle struct {
	// Kind discriminates name references from groups.
	Kind ParticleKind
	// Name is the referenced element type name when Kind == PKName.
	Name string
	// Children holds the group members when Kind is PKSequence or PKChoice.
	Children []*Particle
	// Occ is the occurrence indicator attached to this particle.
	Occ Occurrence
}

// Clone returns a deep copy of the particle tree.
func (p *Particle) Clone() *Particle {
	if p == nil {
		return nil
	}
	c := &Particle{Kind: p.Kind, Name: p.Name, Occ: p.Occ}
	if len(p.Children) > 0 {
		c.Children = make([]*Particle, len(p.Children))
		for i, ch := range p.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// IsGroup reports whether the particle is a sequence or choice group.
func (p *Particle) IsGroup() bool { return p.Kind == PKSequence || p.Kind == PKChoice }

// String renders the particle in DTD content-model syntax.
func (p *Particle) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Particle) write(b *strings.Builder) {
	switch p.Kind {
	case PKName:
		b.WriteString(p.Name)
	case PKSequence, PKChoice:
		sep := ", "
		if p.Kind == PKChoice {
			sep = " | "
		}
		b.WriteByte('(')
		for i, ch := range p.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			ch.write(b)
		}
		b.WriteByte(')')
	}
	b.WriteString(p.Occ.String())
}

// Walk visits p and every descendant particle in depth-first order. The
// visit function returning false prunes descent into that particle's
// children.
func (p *Particle) Walk(visit func(*Particle) bool) {
	if p == nil || !visit(p) {
		return
	}
	for _, ch := range p.Children {
		ch.Walk(visit)
	}
}

// ContentKind discriminates the allowed content categories of an element
// type declaration.
type ContentKind int

// Content categories from the XML 1.0 element declaration grammar.
const (
	// ContentEmpty is the EMPTY keyword: the element has no content.
	ContentEmpty ContentKind = iota + 1
	// ContentAny is the ANY keyword: arbitrary content.
	ContentAny
	// ContentMixed is mixed content: (#PCDATA | a | b)* or bare (#PCDATA).
	ContentMixed
	// ContentChildren is element content: a particle tree of child elements.
	ContentChildren
)

// String returns a short human-readable kind name.
func (k ContentKind) String() string {
	switch k {
	case ContentEmpty:
		return "EMPTY"
	case ContentAny:
		return "ANY"
	case ContentMixed:
		return "mixed"
	case ContentChildren:
		return "children"
	default:
		return fmt.Sprintf("ContentKind(%d)", int(k))
	}
}

// ContentModel describes the allowed content of an element type.
type ContentModel struct {
	// Kind selects the content category.
	Kind ContentKind
	// MixedNames lists the element names admitted alongside #PCDATA when
	// Kind == ContentMixed. A pure text element, declared (#PCDATA), has
	// an empty MixedNames.
	MixedNames []string
	// Particle is the root content particle when Kind == ContentChildren.
	Particle *Particle
}

// Clone returns a deep copy of the content model.
func (m ContentModel) Clone() ContentModel {
	c := ContentModel{Kind: m.Kind, Particle: m.Particle.Clone()}
	if len(m.MixedNames) > 0 {
		c.MixedNames = append([]string(nil), m.MixedNames...)
	}
	return c
}

// IsPCDataOnly reports whether the model is exactly (#PCDATA): text with
// no admitted child elements. Such leaves are the candidates for the
// mapping algorithm's attribute-distilling step.
func (m ContentModel) IsPCDataOnly() bool {
	return m.Kind == ContentMixed && len(m.MixedNames) == 0
}

// String renders the content model in DTD syntax.
func (m ContentModel) String() string {
	switch m.Kind {
	case ContentEmpty:
		return "EMPTY"
	case ContentAny:
		return "ANY"
	case ContentMixed:
		if len(m.MixedNames) == 0 {
			return "(#PCDATA)"
		}
		return "(#PCDATA | " + strings.Join(m.MixedNames, " | ") + ")*"
	case ContentChildren:
		if m.Particle == nil {
			return "()"
		}
		return m.Particle.String()
	default:
		return "?"
	}
}

// ElementDecl is an <!ELEMENT ...> declaration.
type ElementDecl struct {
	// Name is the declared element type name.
	Name string
	// Content is the allowed content model.
	Content ContentModel
}

// Clone returns a deep copy of the declaration.
func (d *ElementDecl) Clone() *ElementDecl {
	return &ElementDecl{Name: d.Name, Content: d.Content.Clone()}
}

// AttType is the declared type of an attribute.
type AttType int

// Attribute types from the XML 1.0 attribute-list declaration grammar.
const (
	// AttCDATA is unconstrained character data.
	AttCDATA AttType = iota + 1
	// AttID is a document-unique identifier.
	AttID
	// AttIDREF references one element carrying an ID attribute.
	AttIDREF
	// AttIDREFS references one or more elements carrying ID attributes.
	AttIDREFS
	// AttEntity names one unparsed entity.
	AttEntity
	// AttEntities names one or more unparsed entities.
	AttEntities
	// AttNMToken is a single name token.
	AttNMToken
	// AttNMTokens is a list of name tokens.
	AttNMTokens
	// AttNotation restricts the value to declared notation names.
	AttNotation
	// AttEnum restricts the value to an enumerated set of name tokens.
	AttEnum
	// AttPCData is the pseudo-type used by the mapping algorithm for
	// attributes distilled from (#PCDATA) subelements. It is not legal
	// XML but appears in the paper's converted-DTD notation.
	AttPCData
)

// String returns the DTD keyword for the attribute type.
func (t AttType) String() string {
	switch t {
	case AttCDATA:
		return "CDATA"
	case AttID:
		return "ID"
	case AttIDREF:
		return "IDREF"
	case AttIDREFS:
		return "IDREFS"
	case AttEntity:
		return "ENTITY"
	case AttEntities:
		return "ENTITIES"
	case AttNMToken:
		return "NMTOKEN"
	case AttNMTokens:
		return "NMTOKENS"
	case AttNotation:
		return "NOTATION"
	case AttEnum:
		return "enumeration"
	case AttPCData:
		return "(#PCDATA)"
	default:
		return fmt.Sprintf("AttType(%d)", int(t))
	}
}

// AttDefault is the default-value category of an attribute declaration.
type AttDefault int

// Attribute default categories.
const (
	// DefRequired is #REQUIRED: the attribute must appear.
	DefRequired AttDefault = iota + 1
	// DefImplied is #IMPLIED: the attribute may be absent with no default.
	DefImplied
	// DefFixed is #FIXED "v": the attribute is constant.
	DefFixed
	// DefValue is a plain default value.
	DefValue
)

// String returns the DTD syntax for the default category (without any
// attached literal value).
func (d AttDefault) String() string {
	switch d {
	case DefRequired:
		return "#REQUIRED"
	case DefImplied:
		return "#IMPLIED"
	case DefFixed:
		return "#FIXED"
	case DefValue:
		return ""
	default:
		return fmt.Sprintf("AttDefault(%d)", int(d))
	}
}

// AttDef is one attribute definition inside an <!ATTLIST ...> declaration.
type AttDef struct {
	// Name is the attribute name.
	Name string
	// Type is the declared attribute type.
	Type AttType
	// Enum lists the allowed tokens for AttEnum and AttNotation types.
	Enum []string
	// Default is the default-value category.
	Default AttDefault
	// Value is the literal default for DefFixed and DefValue.
	Value string
}

// Clone returns a deep copy of the attribute definition.
func (a AttDef) Clone() AttDef {
	c := a
	if len(a.Enum) > 0 {
		c.Enum = append([]string(nil), a.Enum...)
	}
	return c
}

// Required reports whether a conforming document must supply the attribute.
func (a AttDef) Required() bool { return a.Default == DefRequired }

// EntityDecl is an <!ENTITY ...> declaration.
type EntityDecl struct {
	// Name is the entity name.
	Name string
	// Parameter marks a parameter entity (declared with "%").
	Parameter bool
	// Value is the replacement text for internal entities.
	Value string
	// External marks entities declared with SYSTEM/PUBLIC identifiers.
	External bool
	// PublicID and SystemID locate external entities.
	PublicID, SystemID string
	// NDataName names the notation of an unparsed external entity.
	NDataName string
}

// NotationDecl is a <!NOTATION ...> declaration.
type NotationDecl struct {
	// Name is the notation name.
	Name string
	// PublicID and SystemID identify the external notation handler.
	PublicID, SystemID string
}

// DTD is a parsed document type definition: the declarations of one
// external DTD file (optionally merged with an internal subset).
type DTD struct {
	// Name is the document type name from <!DOCTYPE name ...>, if the DTD
	// was read from a DOCTYPE declaration; empty for a bare external file.
	Name string
	// Elements maps element type names to their declarations.
	Elements map[string]*ElementDecl
	// ElementOrder preserves declaration order of element types.
	ElementOrder []string
	// Attlists maps element type names to their merged attribute
	// definitions, in declaration order.
	Attlists map[string][]AttDef
	// Entities maps general entity names to declarations.
	Entities map[string]*EntityDecl
	// ParamEntities maps parameter entity names to declarations.
	ParamEntities map[string]*EntityDecl
	// Notations maps notation names to declarations.
	Notations map[string]*NotationDecl
}

// New returns an empty DTD with all maps initialized.
func New() *DTD {
	return &DTD{
		Elements:      make(map[string]*ElementDecl),
		Attlists:      make(map[string][]AttDef),
		Entities:      make(map[string]*EntityDecl),
		ParamEntities: make(map[string]*EntityDecl),
		Notations:     make(map[string]*NotationDecl),
	}
}

// Clone returns a deep copy of the DTD.
func (d *DTD) Clone() *DTD {
	c := New()
	c.Name = d.Name
	c.ElementOrder = append([]string(nil), d.ElementOrder...)
	for n, e := range d.Elements {
		c.Elements[n] = e.Clone()
	}
	for n, atts := range d.Attlists {
		cp := make([]AttDef, len(atts))
		for i, a := range atts {
			cp[i] = a.Clone()
		}
		c.Attlists[n] = cp
	}
	for n, e := range d.Entities {
		cp := *e
		c.Entities[n] = &cp
	}
	for n, e := range d.ParamEntities {
		cp := *e
		c.ParamEntities[n] = &cp
	}
	for n, nt := range d.Notations {
		cp := *nt
		c.Notations[n] = &cp
	}
	return c
}

// AddElement records an element declaration, preserving first-declaration
// order. Redeclaring an element type is an error per XML 1.0 (VC: Unique
// Element Type Declaration).
func (d *DTD) AddElement(decl *ElementDecl) error {
	if _, dup := d.Elements[decl.Name]; dup {
		return fmt.Errorf("dtd: element type %q declared more than once", decl.Name)
	}
	d.Elements[decl.Name] = decl
	d.ElementOrder = append(d.ElementOrder, decl.Name)
	return nil
}

// AddAttDefs merges attribute definitions for an element. Per XML 1.0,
// later definitions of an already-defined attribute name are ignored.
func (d *DTD) AddAttDefs(element string, defs []AttDef) {
	existing := d.Attlists[element]
	seen := make(map[string]bool, len(existing))
	for _, a := range existing {
		seen[a.Name] = true
	}
	for _, def := range defs {
		if seen[def.Name] {
			continue
		}
		existing = append(existing, def)
		seen[def.Name] = true
	}
	d.Attlists[element] = existing
}

// Element returns the declaration for the named element type, or nil.
func (d *DTD) Element(name string) *ElementDecl { return d.Elements[name] }

// Atts returns the attribute definitions for the named element type.
func (d *DTD) Atts(element string) []AttDef { return d.Attlists[element] }

// Att returns the definition of one attribute of an element, or false.
func (d *DTD) Att(element, att string) (AttDef, bool) {
	for _, a := range d.Attlists[element] {
		if a.Name == att {
			return a, true
		}
	}
	return AttDef{}, false
}

// IDElements returns the element type names that declare an attribute of
// type ID, sorted by declaration order. Per the paper's reference-mapping
// rule, these are the legal targets of every IDREF attribute.
func (d *DTD) IDElements() []string {
	var out []string
	for _, name := range d.ElementOrder {
		for _, a := range d.Attlists[name] {
			if a.Type == AttID {
				out = append(out, name)
				break
			}
		}
	}
	// Attlists may name elements that were never declared via <!ELEMENT>;
	// include them too, deterministically after declared ones.
	var extra []string
	for el := range d.Attlists {
		if _, ok := d.Elements[el]; ok {
			continue
		}
		for _, a := range d.Attlists[el] {
			if a.Type == AttID {
				extra = append(extra, el)
				break
			}
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// IDAttr returns the name of the ID-typed attribute of an element type,
// or false if the element declares none.
func (d *DTD) IDAttr(element string) (string, bool) {
	for _, a := range d.Attlists[element] {
		if a.Type == AttID {
			return a.Name, true
		}
	}
	return "", false
}

// ReferencedNames returns every element name referenced from content
// models (including mixed-content name lists), in first-reference order.
func (d *DTD) ReferencedNames() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, name := range d.ElementOrder {
		decl := d.Elements[name]
		switch decl.Content.Kind {
		case ContentMixed:
			for _, n := range decl.Content.MixedNames {
				add(n)
			}
		case ContentChildren:
			decl.Content.Particle.Walk(func(p *Particle) bool {
				if p.Kind == PKName {
					add(p.Name)
				}
				return true
			})
		}
	}
	return out
}

// UndeclaredReferences returns element names referenced in content models
// but never declared. XML 1.0 permits these only for documents that never
// instantiate them; the mapping layer treats them as opaque entities.
func (d *DTD) UndeclaredReferences() []string {
	var out []string
	for _, n := range d.ReferencedNames() {
		if _, ok := d.Elements[n]; !ok {
			out = append(out, n)
		}
	}
	return out
}

// Roots returns the element types that are never referenced as a child in
// any content model — the candidate document roots — in declaration order.
func (d *DTD) Roots() []string {
	referenced := make(map[string]bool)
	for _, n := range d.ReferencedNames() {
		referenced[n] = true
	}
	var roots []string
	for _, name := range d.ElementOrder {
		if !referenced[name] {
			roots = append(roots, name)
		}
	}
	return roots
}

// Stats summarizes the size of a DTD for reporting.
type Stats struct {
	// ElementTypes is the number of declared element types.
	ElementTypes int
	// Attributes is the total number of declared attributes.
	Attributes int
	// Groups is the number of parenthesized groups in content models,
	// excluding each model's outermost group.
	Groups int
	// PCDataLeaves is the number of (#PCDATA)-only element types.
	PCDataLeaves int
	// IDAttrs and IDREFAttrs count identifier and reference attributes.
	IDAttrs, IDREFAttrs int
	// MaxDepth is the length of the longest acyclic nesting chain.
	MaxDepth int
}

// ComputeStats returns size statistics for the DTD.
func (d *DTD) ComputeStats() Stats {
	var s Stats
	s.ElementTypes = len(d.Elements)
	for _, atts := range d.Attlists {
		s.Attributes += len(atts)
		for _, a := range atts {
			switch a.Type {
			case AttID:
				s.IDAttrs++
			case AttIDREF, AttIDREFS:
				s.IDREFAttrs++
			}
		}
	}
	for _, name := range d.ElementOrder {
		decl := d.Elements[name]
		if decl.Content.IsPCDataOnly() {
			s.PCDataLeaves++
		}
		if decl.Content.Kind == ContentChildren {
			decl.Content.Particle.Walk(func(p *Particle) bool {
				if p.IsGroup() && p != decl.Content.Particle {
					s.Groups++
				}
				return true
			})
		}
	}
	s.MaxDepth = d.maxDepth()
	return s
}

func (d *DTD) maxDepth() int {
	memo := make(map[string]int)
	onPath := make(map[string]bool)
	var depth func(string) int
	depth = func(name string) int {
		if v, ok := memo[name]; ok {
			return v
		}
		if onPath[name] {
			return 0 // cycle: cut it off
		}
		decl := d.Elements[name]
		if decl == nil {
			return 1
		}
		onPath[name] = true
		best := 0
		consider := func(child string) {
			if v := depth(child); v > best {
				best = v
			}
		}
		switch decl.Content.Kind {
		case ContentMixed:
			for _, n := range decl.Content.MixedNames {
				consider(n)
			}
		case ContentChildren:
			decl.Content.Particle.Walk(func(p *Particle) bool {
				if p.Kind == PKName {
					consider(p.Name)
				}
				return true
			})
		}
		onPath[name] = false
		memo[name] = best + 1
		return best + 1
	}
	max := 0
	for _, name := range d.ElementOrder {
		if v := depth(name); v > max {
			max = v
		}
	}
	return max
}
