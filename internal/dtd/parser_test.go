package dtd

import (
	"errors"
	"strings"
	"testing"
)

// paperDTD is Example 1 of the paper (books, articles, authors).
const paperDTD = `
<!ELEMENT book (booktitle, (author* | editor))>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT article (title, (author, affiliation?)+, contactauthor?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT contactauthor EMPTY>
<!ATTLIST contactauthor authorid IDREF #IMPLIED>
<!ELEMENT monograph (title, author, editor)>
<!ELEMENT editor ((book | monograph)*)>
<!ATTLIST editor name CDATA #REQUIRED>
<!ELEMENT author (name)>
<!ATTLIST author id ID #REQUIRED>
<!ELEMENT name (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT affiliation ANY>
`

func TestParsePaperDTD(t *testing.T) {
	d, err := Parse(paperDTD)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := len(d.Elements), 12; got != want {
		t.Errorf("got %d element decls, want %d", got, want)
	}
	wantOrder := []string{
		"book", "booktitle", "article", "title", "contactauthor",
		"monograph", "editor", "author", "name", "firstname", "lastname",
		"affiliation",
	}
	if len(d.ElementOrder) != len(wantOrder) {
		t.Fatalf("element order: %v", d.ElementOrder)
	}
	for i, name := range d.ElementOrder {
		if wantOrder[i] != name {
			t.Fatalf("ElementOrder[%d] = %q, want %q", i, name, wantOrder[i])
		}
	}

	book := d.Element("book")
	if book == nil {
		t.Fatal("book not declared")
	}
	if book.Content.Kind != ContentChildren {
		t.Fatalf("book content kind = %v, want children", book.Content.Kind)
	}
	if got, want := book.Content.String(), "(booktitle, (author* | editor))"; got != want {
		t.Errorf("book content = %q, want %q", got, want)
	}

	article := d.Element("article")
	if got, want := article.Content.String(), "(title, (author, affiliation?)+, contactauthor?)"; got != want {
		t.Errorf("article content = %q, want %q", got, want)
	}

	if ca := d.Element("contactauthor"); ca.Content.Kind != ContentEmpty {
		t.Errorf("contactauthor kind = %v, want EMPTY", ca.Content.Kind)
	}
	if aff := d.Element("affiliation"); aff.Content.Kind != ContentAny {
		t.Errorf("affiliation kind = %v, want ANY", aff.Content.Kind)
	}
	if bt := d.Element("booktitle"); !bt.Content.IsPCDataOnly() {
		t.Errorf("booktitle should be PCDATA-only")
	}

	a, ok := d.Att("author", "id")
	if !ok || a.Type != AttID || a.Default != DefRequired {
		t.Errorf("author/@id = %+v, want required ID", a)
	}
	ref, ok := d.Att("contactauthor", "authorid")
	if !ok || ref.Type != AttIDREF || ref.Default != DefImplied {
		t.Errorf("contactauthor/@authorid = %+v, want implied IDREF", ref)
	}

	if got := d.IDElements(); len(got) != 1 || got[0] != "author" {
		t.Errorf("IDElements = %v, want [author]", got)
	}
	if attr, ok := d.IDAttr("author"); !ok || attr != "id" {
		t.Errorf("IDAttr(author) = %q,%v", attr, ok)
	}

	roots := d.Roots()
	// article is never referenced; book, monograph and editor reference
	// each other; so article is the only sure root alongside none of the
	// mutually-recursive ones.
	found := false
	for _, r := range roots {
		if r == "article" {
			found = true
		}
	}
	if !found {
		t.Errorf("Roots() = %v, want to contain article", roots)
	}
}

func TestParseContentModels(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string // round-tripped content model of element x
	}{
		{"single child", `<!ELEMENT x (a)>`, "(a)"},
		{"sequence", `<!ELEMENT x (a, b, c)>`, "(a, b, c)"},
		{"choice", `<!ELEMENT x (a | b | c)>`, "(a | b | c)"},
		{"nested", `<!ELEMENT x (a, (b | c)*, d?)>`, "(a, (b | c)*, d?)"},
		{"occurrence on group", `<!ELEMENT x (a, b)+>`, "(a, b)+"},
		{"occurrence on name", `<!ELEMENT x (a+)>`, "(a+)"},
		{"deep nesting", `<!ELEMENT x ((a, (b, (c | d))))>`, "((a, (b, (c | d))))"},
		{"whitespace", "<!ELEMENT x ( a ,\n\tb\t| is invalid; keep simple" +
			"", ""}, // placeholder replaced below
	}
	tests[len(tests)-1] = struct {
		name string
		in   string
		want string
	}{"whitespace", "<!ELEMENT x ( a ,\n\t b )>", "(a, b)"}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			got := d.Element("x").Content.String()
			if got != tt.want {
				t.Errorf("content = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseMixed(t *testing.T) {
	d, err := Parse(`<!ELEMENT para (#PCDATA | em | strong)*><!ELEMENT em (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Element("para")
	if p.Content.Kind != ContentMixed {
		t.Fatalf("kind = %v", p.Content.Kind)
	}
	if got := strings.Join(p.Content.MixedNames, ","); got != "em,strong" {
		t.Errorf("mixed names = %q", got)
	}
	if p.Content.IsPCDataOnly() {
		t.Error("para should not be PCDATA-only")
	}
	if !d.Element("em").Content.IsPCDataOnly() {
		t.Error("em should be PCDATA-only")
	}
}

func TestParseAttributeTypes(t *testing.T) {
	src := `
<!ELEMENT e EMPTY>
<!ATTLIST e
  a CDATA #REQUIRED
  b ID #IMPLIED
  c IDREF #IMPLIED
  d IDREFS #IMPLIED
  f NMTOKEN "tok"
  g NMTOKENS #IMPLIED
  h (red | green | blue) "green"
  i NOTATION (gif | png) #IMPLIED
  j CDATA #FIXED "42"
  k ENTITY #IMPLIED
  l ENTITIES #IMPLIED>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	atts := d.Atts("e")
	if len(atts) != 11 {
		t.Fatalf("got %d atts, want 11", len(atts))
	}
	byName := map[string]AttDef{}
	for _, a := range atts {
		byName[a.Name] = a
	}
	checks := []struct {
		name string
		typ  AttType
		def  AttDefault
		val  string
	}{
		{"a", AttCDATA, DefRequired, ""},
		{"b", AttID, DefImplied, ""},
		{"c", AttIDREF, DefImplied, ""},
		{"d", AttIDREFS, DefImplied, ""},
		{"f", AttNMToken, DefValue, "tok"},
		{"g", AttNMTokens, DefImplied, ""},
		{"h", AttEnum, DefValue, "green"},
		{"i", AttNotation, DefImplied, ""},
		{"j", AttCDATA, DefFixed, "42"},
		{"k", AttEntity, DefImplied, ""},
		{"l", AttEntities, DefImplied, ""},
	}
	for _, c := range checks {
		a, ok := byName[c.name]
		if !ok {
			t.Errorf("attribute %q missing", c.name)
			continue
		}
		if a.Type != c.typ || a.Default != c.def || a.Value != c.val {
			t.Errorf("att %s = {%v %v %q}, want {%v %v %q}",
				c.name, a.Type, a.Default, a.Value, c.typ, c.def, c.val)
		}
	}
	if h := byName["h"]; strings.Join(h.Enum, ",") != "red,green,blue" {
		t.Errorf("enum = %v", h.Enum)
	}
	if i := byName["i"]; strings.Join(i.Enum, ",") != "gif,png" {
		t.Errorf("notation enum = %v", i.Enum)
	}
}

func TestParameterEntityExpansion(t *testing.T) {
	src := `
<!ENTITY % inline "em | strong">
<!ENTITY % common.att 'class CDATA #IMPLIED id ID #IMPLIED'>
<!ELEMENT para (#PCDATA | %inline;)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ATTLIST para %common.att;>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Element("para")
	if got := strings.Join(p.Content.MixedNames, ","); got != "em,strong" {
		t.Errorf("mixed names after PE expansion = %q", got)
	}
	atts := d.Atts("para")
	if len(atts) != 2 || atts[0].Name != "class" || atts[1].Name != "id" {
		t.Errorf("atts after PE expansion = %+v", atts)
	}
}

func TestNestedParameterEntities(t *testing.T) {
	src := `
<!ENTITY % a "x">
<!ENTITY % b "%a;, y">
<!ELEMENT r (%b;)>
<!ELEMENT x EMPTY>
<!ELEMENT y EMPTY>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Element("r").Content.String(); got != "(x, y)" {
		t.Errorf("content = %q, want (x, y)", got)
	}
}

func TestRecursiveParameterEntityRejected(t *testing.T) {
	src := `
<!ENTITY % a "%b;">
<!ENTITY % b "%a;">
<!ELEMENT r (%a;)>
`
	if _, err := Parse(src); err == nil {
		t.Fatal("recursive PE expansion should fail")
	}
}

func TestGeneralEntities(t *testing.T) {
	src := `
<!ENTITY company "GTE Laboratories">
<!ENTITY copy "&#169;">
<!ENTITY notice "&copy; 2000 &company;">
<!ELEMENT doc (#PCDATA)>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ExpandText("Notice: &notice;")
	if err != nil {
		t.Fatal(err)
	}
	if want := "Notice: © 2000 GTE Laboratories"; got != want {
		t.Errorf("ExpandText = %q, want %q", got, want)
	}
}

func TestExpandTextErrors(t *testing.T) {
	d := MustParse(`<!ELEMENT doc (#PCDATA)>`)
	if _, err := d.ExpandText("&nope;"); err == nil {
		t.Error("undeclared entity should fail")
	}
	if _, err := d.ExpandText("&unterminated"); err == nil {
		t.Error("unterminated reference should fail")
	}
	if got, _ := d.ExpandText("a &lt; b &amp; c"); got != "a < b & c" {
		t.Errorf("predefined entities: got %q", got)
	}
	if got, _ := d.ExpandText("&#x41;&#66;"); got != "AB" {
		t.Errorf("char refs: got %q", got)
	}
}

func TestExternalEntityHandling(t *testing.T) {
	src := `
<!ENTITY % ext SYSTEM "common.ent">
%ext;
<!ELEMENT doc (#PCDATA)>
`
	_, err := Parse(src)
	if !errors.Is(err, ErrExternalEntity) {
		t.Fatalf("err = %v, want ErrExternalEntity", err)
	}

	d, err := ParseWith(src, ParseOptions{Resolver: func(pub, sys string) (string, error) {
		if sys != "common.ent" {
			t.Errorf("sys = %q", sys)
		}
		return `<!ELEMENT extra EMPTY>`, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Element("extra") == nil {
		t.Error("resolver-provided declaration missing")
	}

	d, err = ParseWith(src, ParseOptions{SkipExternal: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Element("doc") == nil {
		t.Error("doc missing with SkipExternal")
	}
}

func TestConditionalSections(t *testing.T) {
	src := `
<!ENTITY % draft "INCLUDE">
<![%draft;[
<!ELEMENT note (#PCDATA)>
]]>
<![IGNORE[
<!ELEMENT skipped (whatever*)>
<![INCLUDE[ <!ELEMENT nested-skip EMPTY> ]]>
]]>
<!ELEMENT doc (note?)>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Element("note") == nil {
		t.Error("INCLUDE section not parsed")
	}
	if d.Element("skipped") != nil || d.Element("nested-skip") != nil {
		t.Error("IGNORE section was parsed")
	}
}

func TestCommentsAndPIs(t *testing.T) {
	src := `
<!-- a comment with <!ELEMENT fake (x)> inside -->
<?pi some data?>
<!ELEMENT doc EMPTY>
<!-- trailing -- - comment -->
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Element("fake") != nil {
		t.Error("comment content was parsed")
	}
	if d.Element("doc") == nil {
		t.Error("doc missing")
	}
}

func TestNotationDecl(t *testing.T) {
	src := `
<!NOTATION gif SYSTEM "image/gif">
<!NOTATION tex PUBLIC "+//ISBN 0-201-13448-9::Knuth//NOTATION TeX//EN">
<!ELEMENT doc EMPTY>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Notations["gif"]; n == nil || n.SystemID != "image/gif" {
		t.Errorf("gif notation = %+v", n)
	}
	if n := d.Notations["tex"]; n == nil || !strings.Contains(n.PublicID, "Knuth") {
		t.Errorf("tex notation = %+v", n)
	}
}

func TestUnparsedEntity(t *testing.T) {
	src := `
<!NOTATION gif SYSTEM "gifviewer">
<!ENTITY logo SYSTEM "logo.gif" NDATA gif>
<!ELEMENT doc EMPTY>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := d.Entities["logo"]
	if e == nil || !e.External || e.NDataName != "gif" || e.SystemID != "logo.gif" {
		t.Errorf("logo entity = %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, in string }{
		{"bad decl keyword", `<!WIDGET foo>`},
		{"unterminated element", `<!ELEMENT x (a`},
		{"mixed separators", `<!ELEMENT x (a, b | c)>`},
		{"duplicate element", `<!ELEMENT x (a)><!ELEMENT x (b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>`},
		{"stray text", `hello <!ELEMENT x EMPTY>`},
		{"bad attr default", `<!ELEMENT e EMPTY><!ATTLIST e a CDATA #BOGUS>`},
		{"missing default", `<!ELEMENT e EMPTY><!ATTLIST e a CDATA>`},
		{"undeclared PE", `<!ELEMENT x (%nope;)>`},
		{"mixed without star", `<!ELEMENT x (#PCDATA | a)>`},
		{"unterminated comment", `<!-- never ends`},
		{"unterminated literal", `<!ENTITY e "abc>`},
		{"bad char ref", `<!ENTITY e "&#xZZ;">`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("<!ELEMENT x (a)>\n<!BOGUS>")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *ParseError", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "2:") {
		t.Errorf("Error() = %q, want line prefix", pe.Error())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d, err := Parse(paperDTD)
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse serialized DTD: %v\n%s", err, text)
	}
	if d2.String() != text {
		t.Errorf("serialization not stable:\nfirst:\n%s\nsecond:\n%s", text, d2.String())
	}
	if len(d2.Elements) != len(d.Elements) {
		t.Errorf("element count changed: %d -> %d", len(d.Elements), len(d2.Elements))
	}
}

func TestLogical(t *testing.T) {
	src := `
<!NOTATION gif SYSTEM "gifviewer">
<!ENTITY co "ACME">
<!ELEMENT doc EMPTY>
<!ATTLIST doc
  src ENTITY #IMPLIED
  kind NOTATION (gif) #IMPLIED
  vendor CDATA "&co; Inc.">
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.Logical()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entities) != 0 || len(l.Notations) != 0 {
		t.Error("logical DTD should drop entity/notation declarations")
	}
	v, _ := l.Att("doc", "vendor")
	if v.Value != "ACME Inc." {
		t.Errorf("vendor default = %q, want expanded", v.Value)
	}
	k, _ := l.Att("doc", "kind")
	if k.Type != AttEnum {
		t.Errorf("kind type = %v, want enum", k.Type)
	}
	s, _ := l.Att("doc", "src")
	if s.Type != AttNMToken {
		t.Errorf("src type = %v, want nmtoken", s.Type)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustParse(paperDTD)
	c := d.Clone()
	c.Elements["book"].Content.Particle.Children[0].Name = "MUTATED"
	if d.Elements["book"].Content.Particle.Children[0].Name == "MUTATED" {
		t.Error("Clone shares particle structure")
	}
	c.Attlists["author"][0].Name = "mut"
	if d.Attlists["author"][0].Name == "mut" {
		t.Error("Clone shares attlists")
	}
}

func TestStats(t *testing.T) {
	d := MustParse(paperDTD)
	s := d.ComputeStats()
	if s.ElementTypes != 12 {
		t.Errorf("ElementTypes = %d, want 12", s.ElementTypes)
	}
	if s.Attributes != 3 {
		t.Errorf("Attributes = %d, want 3", s.Attributes)
	}
	if s.IDAttrs != 1 || s.IDREFAttrs != 1 {
		t.Errorf("ID/IDREF = %d/%d, want 1/1", s.IDAttrs, s.IDREFAttrs)
	}
	if s.PCDataLeaves != 4 { // booktitle, title, firstname, lastname
		t.Errorf("PCDataLeaves = %d, want 4", s.PCDataLeaves)
	}
	if s.Groups != 3 { // (author*|editor), (author,affiliation?), (book|monograph)
		t.Errorf("Groups = %d, want 3", s.Groups)
	}
	if s.MaxDepth < 3 {
		t.Errorf("MaxDepth = %d, want >= 3", s.MaxDepth)
	}
}

func TestEmptyGroupNotation(t *testing.T) {
	d, err := Parse(`<!ELEMENT book ()>`)
	if err != nil {
		t.Fatal(err)
	}
	cm := d.Element("book").Content
	if cm.Kind != ContentChildren || len(cm.Particle.Children) != 0 {
		t.Errorf("() parsed as %v / %v", cm.Kind, cm.Particle)
	}
}

func TestUndeclaredReferences(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b, c)><!ELEMENT b EMPTY>`)
	got := d.UndeclaredReferences()
	if len(got) != 1 || got[0] != "c" {
		t.Errorf("UndeclaredReferences = %v, want [c]", got)
	}
}

func TestOccurrenceHelpers(t *testing.T) {
	if !OccOptional.Optional() || OccOptional.Repeatable() {
		t.Error("OccOptional flags wrong")
	}
	if !OccZeroPlus.Optional() || !OccZeroPlus.Repeatable() {
		t.Error("OccZeroPlus flags wrong")
	}
	if OccOnePlus.Optional() || !OccOnePlus.Repeatable() {
		t.Error("OccOnePlus flags wrong")
	}
	if OccOnce.Optional() || OccOnce.Repeatable() {
		t.Error("OccOnce flags wrong")
	}
}
