package dtd

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics exercises the DTD parser with structured garbage:
// errors are fine, panics and hangs are not, and whatever parses must
// serialize to a reparsable fixpoint.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pieces := []string{
		"<!ELEMENT", "<!ATTLIST", "<!ENTITY", "<!NOTATION", ">", "(", ")",
		"#PCDATA", "EMPTY", "ANY", "a", "b", "|", ",", "*", "+", "?", "%",
		";", `"v"`, "'v'", "CDATA", "ID", "IDREF", "#REQUIRED", "#IMPLIED",
		"#FIXED", " ", "\n", "<![INCLUDE[", "<![IGNORE[", "]]>", "<!--", "-->",
		"SYSTEM", "PUBLIC", "NDATA",
	}
	for i := 0; i < 5000; i++ {
		var b strings.Builder
		n := 1 + rng.Intn(16)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			d, err := Parse(src)
			if err == nil {
				text := d.String()
				if _, err2 := Parse(text); err2 != nil {
					t.Fatalf("serialized form unparsable for %q: %v\n%s", src, err2, text)
				}
			}
		}()
	}
}
