package dtd

import (
	"fmt"
	"strings"
)

// Logical returns the logical DTD of §2 of the paper: a copy containing
// only element type and attribute-list declarations. Parameter entities
// were already expanded during parsing; this step expands general entity
// references remaining in attribute default values, drops entity and
// notation declarations, and rewrites notation-typed attributes to
// enumerations (their value space) so that no declaration depends on a
// notation.
func (d *DTD) Logical() (*DTD, error) {
	out := New()
	out.Name = d.Name
	out.ElementOrder = append([]string(nil), d.ElementOrder...)
	for n, e := range d.Elements {
		out.Elements[n] = e.Clone()
	}
	for el, atts := range d.Attlists {
		cp := make([]AttDef, len(atts))
		for i, a := range atts {
			c := a.Clone()
			if c.Value != "" {
				v, err := d.ExpandText(c.Value)
				if err != nil {
					return nil, fmt.Errorf("attribute %s/@%s default: %w", el, a.Name, err)
				}
				c.Value = v
			}
			switch c.Type {
			case AttNotation:
				c.Type = AttEnum
			case AttEntity, AttEntities:
				// Unparsed-entity attributes degrade to plain tokens once
				// entity declarations are dropped.
				c.Type = AttNMToken
				if a.Type == AttEntities {
					c.Type = AttNMTokens
				}
			}
			cp[i] = c
		}
		out.Attlists[el] = cp
	}
	return out, nil
}

// ExpandText substitutes general entity references (&name;) in text using
// the DTD's internal entity declarations, recursively, with the same
// depth and size limits as parsing. Character references and predefined
// entities were already resolved at parse time; any still present are
// resolved here too so the function is safe on raw document text.
func (d *DTD) ExpandText(text string) (string, error) {
	return d.expandText(text, 0, &struct{ n int }{})
}

func (d *DTD) expandText(text string, depth int, budget *struct{ n int }) (string, error) {
	if depth > maxExpansionDepth {
		return "", fmt.Errorf("dtd: general entity expansion exceeds depth %d", maxExpansionDepth)
	}
	if !strings.ContainsRune(text, '&') {
		return text, nil
	}
	var b strings.Builder
	for i := 0; i < len(text); {
		c := text[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(text[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("dtd: unterminated entity reference near %q", truncate(text[i:], 20))
		}
		ref := text[i+1 : i+semi]
		i += semi + 1
		rep, err := d.resolveRef(ref, depth, budget)
		if err != nil {
			return "", err
		}
		budget.n += len(rep)
		if budget.n > maxExpansionBytes {
			return "", fmt.Errorf("dtd: entity expansion exceeds %d bytes", maxExpansionBytes)
		}
		b.WriteString(rep)
	}
	return b.String(), nil
}

func (d *DTD) resolveRef(ref string, depth int, budget *struct{ n int }) (string, error) {
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	if strings.HasPrefix(ref, "#") {
		r, err := parseCharRef(ref[1:])
		if err != nil {
			return "", err
		}
		return string(r), nil
	}
	ent := d.Entities[ref]
	if ent == nil {
		return "", fmt.Errorf("dtd: undeclared general entity &%s;", ref)
	}
	if ent.External {
		return "", fmt.Errorf("%w: &%s;", ErrExternalEntity, ref)
	}
	return d.expandText(ent.Value, depth+1, budget)
}

// parseCharRef parses the digits of a character reference (after "&#",
// before ";"), e.g. "x41" or "65".
func parseCharRef(s string) (rune, error) {
	base := 10
	if strings.HasPrefix(s, "x") || strings.HasPrefix(s, "X") {
		base = 16
		s = s[1:]
	}
	var n int64
	for _, c := range s {
		var v int64
		switch {
		case c >= '0' && c <= '9':
			v = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			v = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			v = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("dtd: invalid character reference &#%s;", s)
		}
		n = n*int64(base) + v
		if n > 0x10FFFF {
			return 0, fmt.Errorf("dtd: character reference &#%s; out of range", s)
		}
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("dtd: empty character reference")
	}
	return rune(n), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
