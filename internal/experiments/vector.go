package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"xmlrdb/internal/engine"
)

// E14 measures the vectorized executor against the row-at-a-time path
// on scan-heavy aggregates over a 100k-row shredded-shaped table, in
// three configurations: row-at-a-time, batched over raw values, and
// batched over dictionary-encoded columns (after ANALYZE). Every timed
// query is also checked for result equality across the paths, and the
// snapshot footprint is compared with and without dictionaries.

// E14Rows is the table size; overridable so the one-iteration smoke run
// stays cheap.
var E14Rows = 100_000

// E14Result is the machine-readable form `make bench-json` writes to
// BENCH_E14.json, so the perf trajectory is diffable across PRs.
type E14Result struct {
	Rows               int        `json:"rows"`
	Queries            []E14Query `json:"queries"`
	SnapshotPlainBytes int64      `json:"snapshot_plain_bytes"`
	SnapshotDictBytes  int64      `json:"snapshot_dict_bytes"`
	SnapshotRatio      float64    `json:"snapshot_ratio"`
}

// E14Query is one measured query across the three executor configs.
type E14Query struct {
	SQL         string  `json:"sql"`
	RowNS       int64   `json:"row_ns"`
	VecNS       int64   `json:"vec_ns"`
	DictNS      int64   `json:"dict_ns"`
	SpeedupVec  float64 `json:"speedup_vec"`
	SpeedupDict float64 `json:"speedup_dict"`
	Identical   bool    `json:"identical"`
}

// e14DB builds the workload table: shredded-string shape (a small set
// of element-like tags, moderate-cardinality PCDATA, some NULLs) at
// E14Rows rows.
func e14DB(seed int64) (*engine.DB, error) {
	db := engine.Open()
	if Observe != nil {
		db.SetMetrics(Observe)
	}
	_, _, err := db.Exec(`CREATE TABLE e_item (id INTEGER PRIMARY KEY, doc INTEGER,
  a_tag TEXT NOT NULL, a_val TEXT, ord INTEGER)`)
	if err != nil {
		return nil, err
	}
	tags := []string{"para", "note", "figure", "table", "item", "ref",
		"title", "code", "quote", "list", "cell", "head"}
	const chunk = 5000
	for at := 0; at < E14Rows; at += chunk {
		n := chunk
		if at+n > E14Rows {
			n = E14Rows - at
		}
		batch := make([][]any, n)
		for i := range batch {
			id := at + i
			x := id*7 + int(seed)
			var val any
			if x%20 != 0 { // ~5% NULL PCDATA
				val = fmt.Sprintf("pcdata-%d", x%257)
			}
			batch[i] = []any{id, id / 100, tags[x%len(tags)], val, id}
		}
		if _, err := db.InsertBatch("e_item", batch); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// e14Time runs a query a few times and returns the mean latency and the
// result data.
func e14Time(db *engine.DB, sql string) (time.Duration, [][]any, error) {
	rows, err := db.Query(sql) // warm
	if err != nil {
		return 0, nil, err
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if rows, err = db.Query(sql); err != nil {
			return 0, nil, err
		}
	}
	return time.Since(start) / reps, rows.Data, nil
}

// e14Snapshot loads the same table into a durable store (analyzed or
// not), checkpoints, and returns the snapshot file size.
func e14Snapshot(seed int64, analyze bool) (int64, error) {
	dir, err := os.MkdirTemp("", "xmlrdb-e14-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenAt(dir)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	mem, err := e14DB(seed)
	if err != nil {
		return 0, err
	}
	rows, err := mem.Query(`SELECT id, doc, a_tag, a_val, ord FROM e_item ORDER BY id`)
	if err != nil {
		return 0, err
	}
	if _, _, err := db.Exec(`CREATE TABLE e_item (id INTEGER PRIMARY KEY, doc INTEGER,
  a_tag TEXT NOT NULL, a_val TEXT, ord INTEGER)`); err != nil {
		return 0, err
	}
	if _, err := db.InsertBatch("e_item", rows.Data); err != nil {
		return 0, err
	}
	if analyze {
		if err := db.Analyze(); err != nil {
			return 0, err
		}
	}
	if err := db.Checkpoint(); err != nil {
		return 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			info, err := os.Stat(filepath.Join(dir, e.Name()))
			if err != nil {
				return 0, err
			}
			return info.Size(), nil
		}
	}
	return 0, fmt.Errorf("e14: no snapshot written")
}

// E14 runs the vectorized-execution benchmark.
func E14(seed int64) (*Table, error) {
	db, err := e14DB(seed)
	if err != nil {
		return nil, err
	}
	queries := []string{
		`SELECT a_tag, COUNT(*) AS c, SUM(ord) AS s, MIN(ord) AS lo, MAX(ord) AS hi FROM e_item GROUP BY a_tag`,
		`SELECT COUNT(*) FROM e_item WHERE a_tag = 'figure'`,
		`SELECT COUNT(*) FROM e_item WHERE a_tag IN ('para', 'note')`,
		`SELECT a_val, COUNT(*) AS c FROM e_item WHERE a_tag = 'para' GROUP BY a_val`,
	}
	res := &E14Result{Rows: E14Rows}
	t := &Table{
		ID: "E14", Title: fmt.Sprintf("vectorized execution vs row-at-a-time (%d rows)", E14Rows),
		Header: []string{"query", "row-at-a-time", "vec", "vec+dict", "speedup", "identical"},
		Notes: []string{
			"vec = batched executor over raw values; vec+dict = after ANALYZE (dictionary-coded predicates and group keys)",
			"speedup = row-at-a-time / vec+dict; results compared across all three paths",
		},
	}
	for _, sql := range queries {
		db.SetVectorized(false)
		rowLat, rowData, err := e14Time(db, sql)
		if err != nil {
			return nil, err
		}
		db.SetVectorized(true)
		vecLat, vecData, err := e14Time(db, sql)
		if err != nil {
			return nil, err
		}
		if err := db.Analyze(); err != nil {
			return nil, err
		}
		dictLat, dictData, err := e14Time(db, sql)
		if err != nil {
			return nil, err
		}
		same := reflect.DeepEqual(rowData, vecData) && reflect.DeepEqual(rowData, dictData)
		q := E14Query{
			SQL: sql, RowNS: rowLat.Nanoseconds(), VecNS: vecLat.Nanoseconds(),
			DictNS: dictLat.Nanoseconds(), Identical: same,
		}
		if vecLat > 0 {
			q.SpeedupVec = float64(rowLat) / float64(vecLat)
		}
		if dictLat > 0 {
			q.SpeedupDict = float64(rowLat) / float64(dictLat)
		}
		res.Queries = append(res.Queries, q)
		short := sql
		if len(short) > 60 {
			short = short[:57] + "..."
		}
		t.Rows = append(t.Rows, []string{
			short,
			rowLat.Round(time.Microsecond).String(),
			vecLat.Round(time.Microsecond).String(),
			dictLat.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", q.SpeedupDict),
			fmt.Sprint(same),
		})
	}

	plain, err := e14Snapshot(seed, false)
	if err != nil {
		return nil, err
	}
	encoded, err := e14Snapshot(seed, true)
	if err != nil {
		return nil, err
	}
	res.SnapshotPlainBytes = plain
	res.SnapshotDictBytes = encoded
	if plain > 0 {
		res.SnapshotRatio = float64(encoded) / float64(plain)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"snapshot footprint: %d KB plain vs %d KB dictionary-encoded (%.0f%% of plain)",
		plain/1024, encoded/1024, res.SnapshotRatio*100))
	t.JSON = res
	return t, nil
}
