package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestE1E2Golden verifies the exact paper reproductions.
func TestE1E2Golden(t *testing.T) {
	for _, id := range []string{"e1", "e2"} {
		r, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		tab, err := r.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		joined := strings.Join(tab.Notes, " ")
		if !strings.Contains(joined, "MATCHES") {
			t.Errorf("%s notes = %q, want MATCHES", id, joined)
		}
	}
}

// TestAllExperimentsRun executes every experiment end to end with a
// fixed seed and checks the structural claims DESIGN.md records as the
// expected shapes.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	tables := map[string]*Table{}
	for _, r := range All() {
		tab, err := r.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if tab.String() == "" {
			t.Fatalf("%s: empty output", r.ID)
		}
		tables[r.ID] = tab
	}

	// E4 shape: on the paper DTD, basic > shared >= hybrid tables.
	counts := map[string]int{}
	for _, row := range tables["e4"].Rows {
		if row[0] == "paper" {
			counts[row[1]], _ = strconv.Atoi(row[2])
		}
	}
	if !(counts["basic"] > counts["shared"] && counts["shared"] >= counts["hybrid"]) {
		t.Errorf("e4 inline shape: %v", counts)
	}
	if counts["edge"] != 2 {
		t.Errorf("e4 edge tables = %d", counts["edge"])
	}
	if counts["er-junction"] <= counts["er-fold-fk"] {
		t.Errorf("e4 er shape: %v", counts)
	}

	// E6 shape: edge joins strictly grow with depth and exceed shared's.
	type key struct {
		mapping string
		depth   string
	}
	joins := map[key]int{}
	for _, row := range tables["e6"].Rows {
		joins[key{row[1], row[0]}], _ = strconv.Atoi(row[2])
	}
	if !(joins[key{"edge", "6"}] > joins[key{"edge", "1"}]) {
		t.Errorf("e6 edge joins must grow: %v", joins)
	}
	if joins[key{"edge", "6"}] < joins[key{"shared", "6"}] {
		t.Errorf("e6: edge %d < shared %d at depth 6",
			joins[key{"edge", "6"}], joins[key{"shared", "6"}])
	}

	// E7 shape: with ordering metadata every doc round-trips; without,
	// strictly fewer do on at least one family.
	perfect := true
	lossSomewhere := false
	for _, row := range tables["e7"].Rows {
		equal, _ := strconv.Atoi(row[2])
		total, _ := strconv.Atoi(row[3])
		if row[1] == "with ordering metadata" && equal != total {
			perfect = false
		}
		if row[1] == "without ordering metadata" && equal < total {
			lossSomewhere = true
		}
	}
	if !perfect {
		t.Errorf("e7: with-metadata round trips must all succeed:\n%s", tables["e7"])
	}
	if !lossSomewhere {
		t.Errorf("e7: ordering ablation should lose documents somewhere:\n%s", tables["e7"])
	}

	// E9 shape: distilled booktitle is cheaper on er-junction than edge.
	var erJoins, edgeJoins int
	for _, row := range tables["e9"].Rows {
		if row[0] == "/book/booktitle/text()" {
			switch row[1] {
			case "er-junction":
				erJoins, _ = strconv.Atoi(row[2])
			case "edge":
				edgeJoins, _ = strconv.Atoi(row[2])
			}
		}
	}
	if erJoins >= edgeJoins {
		t.Errorf("e9: distilled leaf er joins (%d) should be < edge joins (%d)", erJoins, edgeJoins)
	}

	// E10 shape: distilling reduces tables on the paper DTD.
	var withTables, withoutTables int
	for _, row := range tables["e10"].Rows {
		if row[0] != "paper" {
			continue
		}
		n, _ := strconv.Atoi(row[4])
		if row[1] == "true" {
			withTables = n
		} else {
			withoutTables = n
		}
	}
	if withTables >= withoutTables {
		t.Errorf("e10: distilling should cut tables: with=%d without=%d", withTables, withoutTables)
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("e99"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tab.String()
	for _, want := range []string{"== X: t ==", "a", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

// TestShapesHoldAcrossSeeds re-runs the shape-bearing experiments with a
// different workload seed: the comparative claims must not be artifacts
// of one particular random corpus.
func TestShapesHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is heavyweight")
	}
	for _, seed := range []int64{7, 23} {
		e4, err := E4(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		counts := map[string]int{}
		for _, row := range e4.Rows {
			if row[0] == "paper" {
				counts[row[1]], _ = strconv.Atoi(row[2])
			}
		}
		if !(counts["basic"] > counts["shared"] && counts["shared"] >= counts["hybrid"]) {
			t.Errorf("seed %d: e4 shape broke: %v", seed, counts)
		}
		e7, err := E7(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, row := range e7.Rows {
			if row[1] == "with ordering metadata" && row[2] != row[3] {
				t.Errorf("seed %d: e7 with-metadata row %v", seed, row)
			}
		}
	}
}
