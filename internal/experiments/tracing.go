package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"xmlrdb"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/serve"
)

// e15Run is one measured pass of the E8b closed-loop load over a fresh
// pipeline+server with the given trace sampling.
type e15Run struct {
	elapsed time.Duration
	lats    []time.Duration // all request latencies, sorted
	held    int             // traces in the flight recorder afterwards
}

func e15Measure(sample, clients, perClient, copies int) (*e15Run, error) {
	p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	for i := 0; i < copies; i++ {
		if _, err := p.LoadXML(paper.BookXML, fmt.Sprintf("book-%d", i)); err != nil {
			return nil, err
		}
		if _, err := p.LoadXML(paper.ArticleXML, fmt.Sprintf("article-%d", i)); err != nil {
			return nil, err
		}
	}
	srv := serve.New(p, serve.Options{
		MaxConcurrent:  clients,
		RequestTimeout: 10 * time.Second,
		TraceSample:    sample,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	lats := make([][]time.Duration, clients)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ds := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := E8bQueries[(c+i)%len(E8bQueries)]
				t0 := time.Now()
				resp, err := http.Get(base + "/path?q=" + url.QueryEscape(q))
				if err != nil {
					errCh <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("trace sample %d: %s = %d", sample, q, resp.StatusCode)
					return
				}
				ds = append(ds, time.Since(t0))
			}
			lats[c] = ds
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	held := len(srv.Recorder().List())
	// Generous drain budget: on a loaded shared host the process can be
	// descheduled for whole seconds, and a flaked shutdown fails the
	// entire interleaved measurement.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = srv.Shutdown(ctx)
	cancel()
	if err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return nil, err
	}

	var all []time.Duration
	for _, ds := range lats {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return &e15Run{elapsed: elapsed, lats: all, held: held}, nil
}

// E15 measures the cost of end-to-end request tracing over the E8b
// serving mix. The same closed-loop load generator runs against
// identical pipelines with tracing off, sampled at one request in 16,
// and full (every request traced). Each traced request builds a span
// tree — serve root, translation, engine plan, one span per Volcano
// operator — and lands in the flight recorder, so the deltas bound
// what always-on observability costs the serving path. Modes are
// interleaved over several repetitions and each mode reports its best
// pass, which cancels scheduler and neighbor noise that would
// otherwise dwarf the effect being measured.
func E15(seed int64) (*Table, error) {
	const (
		clients   = 4
		perClient = 150
		copies    = 20
		reps      = 5
	)
	modes := []struct {
		name   string
		sample int // serve.Options.TraceSample: negative disables
	}{
		{"off", -1},
		{"1/16 sampled", 16},
		{"full", 1},
	}
	t := &Table{
		ID: "E15", Title: fmt.Sprintf("request-tracing overhead over the E8b mix (%d closed-loop clients, %d requests each, best of %d interleaved reps)", clients, perClient, reps),
		Header: []string{"tracing", "requests", "elapsed", "req/s", "mean", "p95", "traces held"},
		Notes: []string{
			"expected shape: spans are recorded per operator at cursor close (not per row) and the flight recorder stores traces as flat JSON bytes, so full tracing should cost single-digit percent throughput versus off; sampling lands in between",
		},
	}
	best := make([]*e15Run, len(modes))
	for rep := 0; rep < reps; rep++ {
		for i, mode := range modes {
			run, err := e15Measure(mode.sample, clients, perClient, copies)
			if err != nil {
				return nil, err
			}
			if best[i] == nil || run.elapsed < best[i].elapsed {
				best[i] = run
			}
		}
	}
	for i, mode := range modes {
		run := best[i]
		total := len(run.lats)
		var sum time.Duration
		for _, d := range run.lats {
			sum += d
		}
		mean := sum / time.Duration(total)
		p95 := run.lats[total*95/100]
		t.Rows = append(t.Rows, []string{
			mode.name, fmt.Sprint(total),
			run.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(total)/run.elapsed.Seconds()),
			mean.Round(time.Microsecond).String(),
			p95.Round(time.Microsecond).String(),
			fmt.Sprint(run.held),
		})
	}
	return t, nil
}
