package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xmlrdb/internal/baselines"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/wgen"
)

// E13 measures plan quality: the structural (written-order) join
// planner against the statistics-driven cost-based planner, on a
// skewed three-table chain where written order is the worst order, and
// on a generated path-query workload over a wgen corpus. Every timed
// query is checked for result equality across the two planners.

// E13Elems sizes the skewed chain's middle table (attrs is 3×).
var E13Elems = 30_000

// E13Result is the machine-readable form `make bench-json` writes to
// BENCH_E13.json.
type E13Result struct {
	Elems        int        `json:"elems"`
	Chain        []E13Query `json:"chain"`
	WorkloadNote string     `json:"workload_note"`
	// Workload aggregates the wgen path-query sweep.
	WorkloadQueries     int     `json:"workload_queries"`
	WorkloadReordered   int     `json:"workload_reordered"`
	WorkloadStructNS    int64   `json:"workload_structural_ns"`
	WorkloadCostNS      int64   `json:"workload_costbased_ns"`
	WorkloadSpeedup     float64 `json:"workload_speedup"`
	WorkloadAllIdentical bool   `json:"workload_all_identical"`
}

// E13Query is one measured chain query across the two planners.
type E13Query struct {
	SQL          string  `json:"sql"`
	StructuralNS int64   `json:"structural_ns"`
	CostNS       int64   `json:"cost_ns"`
	Speedup      float64 `json:"speedup"`
	Reordered    bool    `json:"reordered"`
	Identical    bool    `json:"identical"`
	CostPlan     string  `json:"cost_plan"`
}

// e13DB builds the skewed chain: 4 docs, E13Elems elems piled onto doc
// 1, 3× attrs fanning out — so a chain written elems-first hashes the
// biggest tables before the one-row docs filter can prune anything.
func e13DB() (*engine.DB, error) {
	db := engine.Open()
	if Observe != nil {
		db.SetMetrics(Observe)
	}
	_, _, err := db.ExecScript(`
CREATE TABLE docs (id INTEGER PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE elems (id INTEGER PRIMARY KEY, doc INTEGER NOT NULL, type TEXT NOT NULL,
  val INTEGER, FOREIGN KEY (doc) REFERENCES docs (id));
CREATE TABLE attrs (id INTEGER PRIMARY KEY, elem INTEGER NOT NULL, kind TEXT NOT NULL,
  FOREIGN KEY (elem) REFERENCES elems (id));
CREATE INDEX docs_name ON docs (name);
`)
	if err != nil {
		return nil, err
	}
	docs := [][]any{}
	for i := 1; i <= 4; i++ {
		docs = append(docs, []any{int64(i), fmt.Sprintf("d%d", i)})
	}
	if _, err := db.InsertBatch("docs", docs); err != nil {
		return nil, err
	}
	const chunk = 5000
	skew := E13Elems / 100 // docs 2-4 get skew/3 rows each, doc 1 the rest
	for at := 0; at < E13Elems; at += chunk {
		n := min(chunk, E13Elems-at)
		batch := make([][]any, n)
		for i := range batch {
			id := at + i
			doc := int64(1)
			if id < skew {
				doc = int64(2 + id%3)
			}
			batch[i] = []any{int64(id), doc, fmt.Sprintf("t%d", id%5), int64(id % 1000)}
		}
		if _, err := db.InsertBatch("elems", batch); err != nil {
			return nil, err
		}
	}
	for at := 0; at < 3*E13Elems; at += chunk {
		n := min(chunk, 3*E13Elems-at)
		batch := make([][]any, n)
		for i := range batch {
			id := at + i
			batch[i] = []any{int64(id), int64(id / 3), fmt.Sprintf("k%d", id%3)}
		}
		if _, err := db.InsertBatch("attrs", batch); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// e13Time runs a query once warm, then returns the mean of three runs
// and the sorted row renderings (reordered plans may emit rows in a
// different order).
func e13Time(db *engine.DB, sql string) (time.Duration, map[string]int, error) {
	rows, err := db.Query(sql) // warm
	if err != nil {
		return 0, nil, err
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if rows, err = db.Query(sql); err != nil {
			return 0, nil, err
		}
	}
	lat := time.Since(start) / reps
	set := map[string]int{}
	for _, r := range rows.Data {
		set[fmt.Sprint(r)]++
	}
	return lat, set, nil
}

// e13ScanOrder reduces a rendered plan to its scan sequence, the
// fingerprint that changes iff the join order changed.
func e13ScanOrder(plan string) string {
	var scans []string
	for _, line := range strings.Split(plan, "\n") {
		if i := strings.Index(line, "Scan("); i >= 0 {
			rest := line[i:]
			if j := strings.Index(rest, ")"); j >= 0 {
				scans = append(scans, rest[:j+1])
			}
		}
	}
	return strings.Join(scans, " <- ")
}

func sameRowSet(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// E13 runs the plan-quality benchmark.
func E13(seed int64) (*Table, error) {
	db, err := e13DB()
	if err != nil {
		return nil, err
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	chain := []string{
		`SELECT COUNT(*) AS n FROM elems e JOIN attrs a ON a.elem = e.id` +
			` JOIN docs d ON e.doc = d.id WHERE d.name = 'd3'`,
		`SELECT a.kind, COUNT(*) AS n FROM elems e JOIN attrs a ON a.elem = e.id` +
			` JOIN docs d ON e.doc = d.id WHERE d.name = 'd2' GROUP BY a.kind`,
		`SELECT COUNT(*) AS n FROM attrs a JOIN elems e ON a.elem = e.id` +
			` JOIN docs d ON e.doc = d.id WHERE d.name = 'd4' AND a.kind = 'k1'`,
	}
	res := &E13Result{Elems: E13Elems}
	t := &Table{
		ID: "E13", Title: fmt.Sprintf("cost-based vs structural join order (skewed chain, %d elems)", E13Elems),
		Header: []string{"query", "structural", "cost-based", "speedup", "reordered", "identical"},
		Notes: []string{
			"chain is written biggest-table-first with the selective predicate on the far end;",
			"the cost-based planner should start from the one-row docs index probe and build the small hash sides",
		},
	}
	ctx := context.Background()
	for _, sql := range chain {
		db.SetCostBased(false)
		structLat, structRows, err := e13Time(db, sql)
		if err != nil {
			return nil, err
		}
		structPlan, err := db.ExplainQueryContext(ctx, sql)
		if err != nil {
			return nil, err
		}
		db.SetCostBased(true)
		costLat, costRows, err := e13Time(db, sql)
		if err != nil {
			return nil, err
		}
		costPlan, err := db.ExplainQueryContext(ctx, sql)
		if err != nil {
			return nil, err
		}
		q := E13Query{
			SQL:          sql,
			StructuralNS: structLat.Nanoseconds(),
			CostNS:       costLat.Nanoseconds(),
			Reordered:    e13ScanOrder(structPlan) != e13ScanOrder(costPlan),
			Identical:    sameRowSet(structRows, costRows),
			CostPlan:     costPlan,
		}
		if costLat > 0 {
			q.Speedup = float64(structLat) / float64(costLat)
		}
		res.Chain = append(res.Chain, q)
		t.Rows = append(t.Rows, []string{
			sql[:min(52, len(sql))] + "...",
			structLat.Round(time.Microsecond).String(),
			costLat.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", q.Speedup),
			fmt.Sprint(q.Reordered), fmt.Sprint(q.Identical),
		})
	}

	// Generated path-query workload: load a wgen corpus under the ER
	// mapping and sweep translated queries under both planners.
	d := wgen.GenerateDTD(wgen.DTDConfig{
		Elements: 16, Seed: seed, Levels: 4, AttrsPerElement: 2,
		IDProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.5, ChoiceProb: 0.3,
	})
	corpus, err := wgen.Corpus(d, 60, seed*31, wgen.DocConfig{MaxRepeat: 4})
	if err != nil {
		return nil, err
	}
	maps, err := baselines.All(d)
	if err != nil {
		return nil, err
	}
	m := maps[0]
	wdb := engine.Open()
	if err := wdb.CreateSchema(m.Schema()); err != nil {
		return nil, err
	}
	for di, doc := range corpus {
		if _, err := m.Load(wdb, doc, fmt.Sprintf("d%d", di)); err != nil {
			return nil, err
		}
	}
	if err := wdb.Analyze(); err != nil {
		return nil, err
	}
	queries := wgen.GenerateQueries(d, 20, seed*97, wgen.QueryConfig{Depth: 4, PredProb: 0.4})
	allSame := true
	for _, qs := range queries {
		trans, err := m.Translator().Translate(pathquery.MustParse(qs))
		if err != nil {
			continue
		}
		res.WorkloadQueries++
		wdb.SetCostBased(false)
		var structNS, costNS int64
		structSet := map[string]int{}
		var structOrders []string
		for _, sql := range trans.SQLs {
			lat, set, err := e13Time(wdb, sql)
			if err != nil {
				return nil, err
			}
			structNS += lat.Nanoseconds()
			for k, n := range set {
				structSet[k] += n
			}
			plan, err := wdb.ExplainQueryContext(ctx, sql)
			if err != nil {
				return nil, err
			}
			structOrders = append(structOrders, e13ScanOrder(plan))
		}
		wdb.SetCostBased(true)
		costSet := map[string]int{}
		reordered := false
		for si, sql := range trans.SQLs {
			lat, set, err := e13Time(wdb, sql)
			if err != nil {
				return nil, err
			}
			costNS += lat.Nanoseconds()
			for k, n := range set {
				costSet[k] += n
			}
			plan, err := wdb.ExplainQueryContext(ctx, sql)
			if err != nil {
				return nil, err
			}
			if e13ScanOrder(plan) != structOrders[si] {
				reordered = true
			}
		}
		if reordered {
			res.WorkloadReordered++
		}
		if !sameRowSet(structSet, costSet) {
			allSame = false
		}
		res.WorkloadStructNS += structNS
		res.WorkloadCostNS += costNS
	}
	res.WorkloadAllIdentical = allSame
	if res.WorkloadCostNS > 0 {
		res.WorkloadSpeedup = float64(res.WorkloadStructNS) / float64(res.WorkloadCostNS)
	}
	res.WorkloadNote = fmt.Sprintf("%s mapping, %d docs, generated path queries", m.Name(), len(corpus))
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("[wgen workload: %d queries, %d replanned]", res.WorkloadQueries, res.WorkloadReordered),
		time.Duration(res.WorkloadStructNS).Round(time.Microsecond).String(),
		time.Duration(res.WorkloadCostNS).Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", res.WorkloadSpeedup),
		fmt.Sprint(res.WorkloadReordered > 0), fmt.Sprint(allSame),
	})
	t.JSON = res
	return t, nil
}
