package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"xmlrdb"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/serve"
)

// E8bQueries is the path-query mix the serving load generator cycles
// through: distilled leaf lookups, relationship traversals, a predicate
// and a descendant query (the expensive multi-arm translation).
var E8bQueries = []string{
	"/book/booktitle/text()",
	"/article/title/text()",
	"/book/author",
	"/article/author/name",
	"/article/contactauthor[@authorid]",
	"//author",
}

// E8b measures served path-query throughput and latency with the plan
// cache on versus off. A pipeline loaded with the paper's fixtures is
// put behind the HTTP serving layer, then a closed-loop load generator
// (every client issues its next request as soon as the previous one
// returns) sweeps the query mix. With the cache off every request pays
// a fresh path-to-SQL translation; with it on, steady state is a cache
// hit per request, so the delta isolates translation cost under load.
func E8b(seed int64) (*Table, error) {
	const (
		clients   = 4
		perClient = 150
		copies    = 20 // fixture documents loaded per kind
	)
	t := &Table{
		ID: "E8b", Title: fmt.Sprintf("served path-query throughput (%d closed-loop clients, %d requests each)", clients, perClient),
		Header: []string{"plan cache", "requests", "elapsed", "req/s", "mean", "p95", "hits/misses"},
		Notes: []string{
			"expected shape: cache on serves every steady-state request from the LRU (hits ~= requests), lowering mean latency and raising throughput versus retranslating per request",
		},
	}
	for _, mode := range []struct {
		name string
		size int // Config.PlanCacheSize: negative disables
	}{
		{"off", -1},
		{"on", 0},
	} {
		p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{PlanCacheSize: mode.size})
		if err != nil {
			return nil, err
		}
		for i := 0; i < copies; i++ {
			if _, err := p.LoadXML(paper.BookXML, fmt.Sprintf("book-%d", i)); err != nil {
				return nil, err
			}
			if _, err := p.LoadXML(paper.ArticleXML, fmt.Sprintf("article-%d", i)); err != nil {
				return nil, err
			}
		}
		srv := serve.New(p, serve.Options{
			MaxConcurrent:  clients,
			RequestTimeout: 10 * time.Second,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		base := "http://" + ln.Addr().String()

		lats := make([][]time.Duration, clients)
		errCh := make(chan error, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ds := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					q := E8bQueries[(c+i)%len(E8bQueries)]
					t0 := time.Now()
					resp, err := http.Get(base + "/path?q=" + url.QueryEscape(q))
					if err != nil {
						errCh <- err
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("cache %s: %s = %d", mode.name, q, resp.StatusCode)
						return
					}
					ds = append(ds, time.Since(t0))
				}
				lats[c] = ds
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = srv.Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, err
		}
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			return nil, err
		}
		snap := p.MetricsSnapshot()
		if err := p.Close(); err != nil {
			return nil, err
		}

		var all []time.Duration
		var sum time.Duration
		for _, ds := range lats {
			all = append(all, ds...)
			for _, d := range ds {
				sum += d
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		total := len(all)
		mean := sum / time.Duration(total)
		p95 := all[total*95/100]
		t.Rows = append(t.Rows, []string{
			mode.name, fmt.Sprint(total),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
			mean.Round(time.Microsecond).String(),
			p95.Round(time.Microsecond).String(),
			fmt.Sprintf("%d/%d", snap.Query.PlanCacheHits, snap.Query.PlanCacheMisses),
		})
	}
	return t, nil
}
