// Package experiments implements the paper's evaluation suite (see
// DESIGN.md §4): the exact reproduction of Examples 1–2 and Figures 1–2,
// plus the quantitative comparisons the paper defers to future work —
// schema size, loading throughput, query cost and latency, round-trip
// fidelity, reconstruction cost, and the ablations of the design choices
// (attribute distilling, ordering metadata, indexes). The cmd/xmlbench
// binary and the repository's testing.B benchmarks both drive this
// package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"xmlrdb/internal/baselines"
	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/reconstruct"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/wgen"
	"xmlrdb/internal/xmltree"
)

// Table is one experiment's result in the row/column form the harness
// prints.
type Table struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Header names the columns.
	Header []string
	// Rows holds the data.
	Rows [][]string
	// Notes are printed after the table (expected shapes, caveats).
	Notes []string
	// Text replaces the tabular form for textual artifacts (E1/E2).
	Text string
	// JSON, when set, is the experiment's machine-readable result;
	// cmd/xmlbench -json marshals it alongside the rendered rows.
	JSON any
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Text != "" {
		b.WriteString(t.Text)
	}
	if len(t.Header) > 0 {
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(t.Header, "\t"))
		for _, r := range t.Rows {
			fmt.Fprintln(w, strings.Join(r, "\t"))
		}
		w.Flush()
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// Runner is a registered experiment.
type Runner struct {
	// ID is the experiment identifier (e1..e12).
	ID string
	// Title describes it.
	Title string
	// Run executes it. Seed fixes all randomness.
	Run func(seed int64) (*Table, error)
}

// All returns the experiments in order.
func All() []Runner {
	return []Runner{
		{"e1", "Example 2: converted DTD (golden reproduction)", E1},
		{"e2", "Figure 2: ER diagram inventory (golden reproduction)", E2},
		{"e3", "mapping time vs DTD size (Figure-1 pipeline cost)", E3},
		{"e4", "schema size per mapping (tables / columns / FKs)", E4},
		{"e5", "loading throughput per mapping", E5},
		{"e5b", "parallel bulk-load scaling (worker sweep)", E5b},
		{"e6", "query latency vs path depth per mapping", E6},
		{"e6b", "EXPLAIN plan stats: joins emitted vs avoided (er mapping)", E6b},
		{"e7", "round-trip fidelity, with and without ordering metadata", E7},
		{"e7b", "crash recovery cost vs snapshot interval (durable store)", E7b},
		{"e8", "reconstruction time vs document size", E8},
		{"e8b", "served path-query throughput/latency: plan cache on vs off", E8b},
		{"e9", "joins per query class per mapping ([SHT+99] comparison)", E9},
		{"e10", "ablation: attribute distilling (step 2) on/off", E10},
		{"e11", "ablation: secondary index on IDREF point queries", E11},
		{"e12", "storage footprint per mapping", E12},
		{"e13", "plan quality: cost-based vs structural join order", E13},
		{"e14", "vectorized execution: batched + dictionary vs row-at-a-time", E14},
		{"e15", "request-tracing overhead: off vs sampled vs full", E15},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// E1 reproduces the paper's Example 2 and checks it byte for byte.
func E1(seed int64) (*Table, error) {
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		return nil, err
	}
	got := res.Converted.String()
	t := &Table{ID: "E1", Title: "converted DTD (paper Example 2)", Text: got}
	if got == paper.Example2Converted {
		t.Notes = append(t.Notes, "MATCHES the paper's Example 2 exactly")
	} else {
		t.Notes = append(t.Notes, "MISMATCH against the paper's Example 2")
	}
	return t, nil
}

// E2 reproduces the Figure 2 inventory.
func E2(seed int64) (*Table, error) {
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "E2", Title: "ER diagram (paper Figure 2)", Text: res.Model.Inventory()}
	var entities, rels []string
	for _, e := range res.Model.Entities {
		entities = append(entities, e.Name)
	}
	for _, r := range res.Model.Relationships {
		rels = append(rels, r.Name)
	}
	sort.Strings(rels)
	wantRels := append([]string(nil), paper.Figure2Relationships...)
	sort.Strings(wantRels)
	if strings.Join(entities, " ") == strings.Join(paper.Figure2Entities, " ") &&
		strings.Join(rels, " ") == strings.Join(wantRels, " ") {
		t.Notes = append(t.Notes, "entity and relationship inventory MATCHES Figure 2")
	} else {
		t.Notes = append(t.Notes, "inventory MISMATCH against Figure 2")
	}
	return t, nil
}

// E3 measures mapping time against DTD size.
func E3(seed int64) (*Table, error) {
	t := &Table{
		ID: "E3", Title: "mapping time vs DTD size",
		Header: []string{"element types", "groups", "map time", "entities", "relationships"},
		Notes:  []string{"expected shape: near-linear growth in DTD size"},
	}
	for _, n := range []int{10, 25, 50, 100, 250, 500} {
		d := wgen.GenerateDTD(wgen.DTDConfig{
			Elements: n, Seed: seed + int64(n), AttrsPerElement: 2,
			IDProb: 0.2, IDREFProb: 0.2, OptionalProb: 0.3, RepeatProb: 0.3,
			ChoiceProb: 0.4, Levels: 6,
		})
		start := time.Now()
		const reps = 5
		var res *core.Result
		var err error
		for i := 0; i < reps; i++ {
			res, err = core.Map(d)
			if err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start) / reps
		st := d.ComputeStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(st.ElementTypes), fmt.Sprint(st.Groups),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(len(res.Model.Entities)), fmt.Sprint(len(res.Model.Relationships)),
		})
	}
	return t, nil
}

// suite returns the DTD families every comparative experiment sweeps.
func suite(seed int64) []struct {
	name string
	d    *dtd.DTD
} {
	return []struct {
		name string
		d    *dtd.DTD
	}{
		{"paper", dtd.MustParse(paper.Example1DTD)},
		{"flat-wide", wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 40, Levels: 2, MaxChildren: 8, Seed: seed + 1,
			AttrsPerElement: 3, PCDataRatio: 0.9, OptionalProb: 0.2, RepeatProb: 0.3})},
		{"deep", wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 40, Levels: 8, MaxChildren: 2, Seed: seed + 2,
			AttrsPerElement: 1, OptionalProb: 0.2, RepeatProb: 0.2})},
		{"choice-heavy", wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 40, Levels: 4, MaxChildren: 5, ChoiceProb: 0.9, Seed: seed + 3,
			OptionalProb: 0.3, RepeatProb: 0.3})},
		{"ref-heavy", wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 40, Levels: 4, MaxChildren: 3, Seed: seed + 4,
			IDProb: 0.6, IDREFProb: 0.6, AttrsPerElement: 1,
			OptionalProb: 0.2, RepeatProb: 0.3})},
	}
}

// E4 compares schema sizes across mappings and DTD families.
func E4(seed int64) (*Table, error) {
	t := &Table{
		ID: "E4", Title: "schema size per mapping",
		Header: []string{"dtd", "mapping", "tables", "columns", "fks"},
		Notes: []string{
			"expected shape: edge/universal constant; basic > shared >= hybrid; er-junction > er-fold",
		},
	}
	for _, s := range suite(seed) {
		maps, err := baselines.All(s.d)
		if err != nil {
			return nil, err
		}
		for _, m := range maps {
			st := m.Schema().ComputeStats()
			t.Rows = append(t.Rows, []string{
				s.name, m.Name(), fmt.Sprint(st.Tables), fmt.Sprint(st.Columns), fmt.Sprint(st.ForeignKeys),
			})
		}
	}
	return t, nil
}

// corpusFor generates a deterministic corpus for a DTD.
func corpusFor(d *dtd.DTD, n int, seed int64) ([]*xmltree.Document, error) {
	return wgen.Corpus(d, n, seed, wgen.DocConfig{MaxRepeat: 3})
}

// E5 measures loading throughput per mapping.
func E5(seed int64) (*Table, error) {
	t := &Table{
		ID: "E5", Title: "loading throughput per mapping (200 synthetic documents)",
		Header: []string{"dtd", "mapping", "docs", "rows", "elapsed", "docs/s"},
		Notes: []string{
			"expected shape: edge loads fastest per doc (no derivation); er pays content derivation; inline variants write fewest rows",
		},
	}
	before := snap()
	for _, s := range suite(seed) {
		docs, err := corpusFor(s.d, 200, seed)
		if err != nil {
			return nil, err
		}
		maps, err := baselines.All(s.d)
		if err != nil {
			return nil, err
		}
		for _, m := range maps {
			db, err := openDB(m.Schema())
			if err != nil {
				return nil, err
			}
			rows := 0
			start := time.Now()
			for i, doc := range docs {
				st, err := m.Load(db, doc, fmt.Sprintf("d%d", i))
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", s.name, m.Name(), err)
				}
				rows += st.Rows
			}
			elapsed := time.Since(start)
			perSec := float64(len(docs)) / elapsed.Seconds()
			t.Rows = append(t.Rows, []string{
				s.name, m.Name(), fmt.Sprint(len(docs)), fmt.Sprint(rows),
				elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.0f", perSec),
			})
		}
	}
	metricsNote(t, before)
	return t, nil
}

// E5bWorkers is the worker sweep E5b runs; cmd/xmlbench -workers
// replaces it with {1, N} to measure one specific count against the
// serial baseline.
var E5bWorkers = []int{1, 2, 4, 8}

// E5b measures parallel bulk-load scaling: the §5 loader over the er
// mapping, one corpus per DTD family, swept across worker counts. Each
// worker stages a whole document and flushes it as per-table batches,
// so contention is per-table locks rather than one global mutex.
func E5b(seed int64) (*Table, error) {
	t := &Table{
		ID: "E5b", Title: "parallel bulk-load scaling (er mapping, 200 synthetic documents)",
		Header: []string{"dtd", "workers", "docs", "rows", "elapsed", "docs/s", "speedup"},
		Notes: []string{
			"expected shape: near-linear speedup while workers <= physical cores; staged flushing keeps lock acquisitions per document constant",
		},
	}
	before := snap()
	for _, s := range suite(seed)[:2] { // paper + flat-wide keep the sweep affordable
		docs, err := corpusFor(s.d, 200, seed)
		if err != nil {
			return nil, err
		}
		var base float64
		for _, w := range E5bWorkers {
			res, err := core.Map(s.d)
			if err != nil {
				return nil, err
			}
			m, err := ermap.Build(res.Model, ermap.Options{})
			if err != nil {
				return nil, err
			}
			db, err := openDB(m.Schema)
			if err != nil {
				return nil, err
			}
			loader, err := shred.NewLoader(res, m, db)
			if err != nil {
				return nil, err
			}
			observeLoader(loader)
			start := time.Now()
			sts, err := loader.LoadCorpus(docs, w)
			if err != nil {
				return nil, fmt.Errorf("%s/workers=%d: %w", s.name, w, err)
			}
			elapsed := time.Since(start)
			rows := 0
			for _, st := range sts {
				rows += st.Elements + st.RelRows + st.RefRows + st.TextChunks
			}
			secs := elapsed.Seconds()
			if base == 0 {
				base = secs
			}
			t.Rows = append(t.Rows, []string{
				s.name, fmt.Sprint(w), fmt.Sprint(len(docs)), fmt.Sprint(rows),
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(len(docs))/secs),
				fmt.Sprintf("%.2fx", base/secs),
			})
		}
	}
	if Observe != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"metrics: cumulative worker utilization=%.2f (busy/capacity across the sweep)",
			Observe.Snapshot().WorkerUtilization()))
	}
	metricsNote(t, before)
	return t, nil
}

// deepPathDTD builds the fixed-depth chain DTD used by E6: a spine
// c1/c2/.../c8 with attributes, so path queries of any depth up to 8
// exist in every mapping.
func deepPathDTD(levels int) *dtd.DTD {
	var b strings.Builder
	for i := 1; i <= levels; i++ {
		if i < levels {
			// Repeated child keeps every level a separate relation under
			// inlining, isolating join depth as the variable.
			fmt.Fprintf(&b, "<!ELEMENT c%d (c%d+)>\n", i, i+1)
		} else {
			fmt.Fprintf(&b, "<!ELEMENT c%d (#PCDATA)>\n", i)
		}
		fmt.Fprintf(&b, "<!ATTLIST c%d k CDATA #IMPLIED>\n", i)
	}
	return dtd.MustParse(b.String())
}

// deepPathDocs generates documents for the chain DTD with the given
// fanout per level.
func deepPathDocs(levels, fanout, n int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, n)
	for di := 0; di < n; di++ {
		var build func(level int) *xmltree.Node
		build = func(level int) *xmltree.Node {
			el := xmltree.NewElement(fmt.Sprintf("c%d", level))
			el.SetAttr("k", fmt.Sprintf("v%d", di))
			if level == levels {
				el.AppendText("leaf")
				return el
			}
			for f := 0; f < fanout; f++ {
				el.AppendChild(build(level + 1))
			}
			return el
		}
		root := build(1)
		docs = append(docs, &xmltree.Document{Root: root, Children: []*xmltree.Node{root}})
	}
	return docs
}

// E6 measures query latency against path depth for every mapping.
func E6(seed int64) (*Table, error) {
	const levels = 6
	d := deepPathDTD(levels)
	docs := deepPathDocs(levels, 2, 30)
	t := &Table{
		ID: "E6", Title: "query latency vs path depth (chain DTD, 30 docs, fanout 2)",
		Header: []string{"depth", "mapping", "joins", "rows", "latency"},
		Notes: []string{
			"expected shape: every mapping's cost grows with depth; edge grows fastest (self-join per step)",
		},
	}
	before := snap()
	maps, err := baselines.All(d)
	if err != nil {
		return nil, err
	}
	for _, m := range maps {
		db, err := openDB(m.Schema())
		if err != nil {
			return nil, err
		}
		for i, doc := range docs {
			if _, err := m.Load(db, doc, fmt.Sprintf("d%d", i)); err != nil {
				return nil, fmt.Errorf("%s: %w", m.Name(), err)
			}
		}
		tr := m.Translator()
		for depth := 1; depth <= levels; depth++ {
			parts := make([]string, depth)
			for i := range parts {
				parts[i] = fmt.Sprintf("c%d", i+1)
			}
			path := "/" + strings.Join(parts, "/")
			q, err := pathquery.Parse(path)
			if err != nil {
				return nil, err
			}
			trans, err := tr.Translate(q)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", m.Name(), path, err)
			}
			// Warm once, then time.
			if _, err := pathquery.Execute(db, trans); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", m.Name(), path, err)
			}
			const reps = 5
			start := time.Now()
			var rows *engine.Rows
			for r := 0; r < reps; r++ {
				rows, err = pathquery.Execute(db, trans)
				if err != nil {
					return nil, err
				}
			}
			lat := time.Since(start) / reps
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(depth), m.Name(), fmt.Sprint(trans.Joins),
				fmt.Sprint(len(rows.Data)), lat.Round(time.Microsecond).String(),
			})
		}
	}
	metricsNote(t, before)
	return t, nil
}

// E6b reports the ER translator's EXPLAIN plan statistics per paper
// query: union arms, joins emitted, and the joins the mapping's step-2
// attribute distilling avoided by resolving child steps to parent
// columns instead of relationship chains.
func E6b(seed int64) (*Table, error) {
	d := dtd.MustParse(paper.Example1DTD)
	queries := []string{
		"/book/booktitle",
		"/book/booktitle/text()",
		"/article/title/text()",
		"/article/author/name",
		"/article/contactauthor[@authorid]",
		"//author",
	}
	t := &Table{
		ID: "E6b", Title: "EXPLAIN plan stats (er mapping, paper DTD)",
		Header: []string{"query", "strategy", "arms", "joins-max", "joins-total", "distilled-steps", "joins-avoided"},
		Notes: []string{
			"joins-avoided counts the join predicates each distilled step would have cost under the same strategy without mapping step 2",
		},
	}
	for _, strat := range []struct {
		name string
		s    ermap.Strategy
	}{
		{"junction", ermap.StrategyJunction},
		{"fold", ermap.StrategyFoldFK},
	} {
		res, err := core.Map(d)
		if err != nil {
			return nil, err
		}
		m, err := ermap.Build(res.Model, ermap.Options{Strategy: strat.s})
		if err != nil {
			return nil, err
		}
		tr := pathquery.NewERTranslator(res, m)
		if Observe != nil || Trace != nil {
			tr.SetObserver(Observe, Trace)
		}
		for _, qs := range queries {
			q, err := pathquery.Parse(qs)
			if err != nil {
				return nil, err
			}
			trans, err := tr.Translate(q)
			if err != nil {
				t.Rows = append(t.Rows, []string{qs, strat.name, "n/a", "-", "-", "-", "-"})
				continue
			}
			st := trans.Stats
			t.Rows = append(t.Rows, []string{
				qs, strat.name, fmt.Sprint(st.Arms), fmt.Sprint(st.JoinsMax),
				fmt.Sprint(st.JoinsTotal), fmt.Sprint(st.DistilledSteps),
				fmt.Sprint(st.JoinsAvoided),
			})
		}
	}
	return t, nil
}

// E7 measures round-trip fidelity with and without ordering metadata.
func E7(seed int64) (*Table, error) {
	t := &Table{
		ID: "E7", Title: "round-trip fidelity (100 docs per DTD)",
		Header: []string{"dtd", "variant", "equal", "total"},
		Notes: []string{
			"the ordering metadata (ordinal columns) is what makes exact round-trips possible;",
			"dropping it leaves only schema ordering, which misorders repeated siblings",
		},
	}
	for _, s := range suite(seed) {
		docs, err := corpusFor(s.d, 100, seed+7)
		if err != nil {
			return nil, err
		}
		for _, withOrd := range []bool{true, false} {
			res, err := core.Map(s.d)
			if err != nil {
				return nil, err
			}
			m, err := ermap.Build(res.Model, ermap.Options{})
			if err != nil {
				return nil, err
			}
			db, err := openDB(m.Schema)
			if err != nil {
				return nil, err
			}
			loader, err := shred.NewLoader(res, m, db)
			if err != nil {
				return nil, err
			}
			observeLoader(loader)
			recon := reconstruct.New(res, m, db)
			recon.IgnoreOrdinals = !withOrd
			equal := 0
			for i, doc := range docs {
				st, err := loader.LoadDocument(doc, fmt.Sprintf("d%d", i))
				if err != nil {
					return nil, fmt.Errorf("%s: %w", s.name, err)
				}
				if recon.Verify(st.DocID, doc) == nil {
					equal++
				}
			}
			variant := "with ordering metadata"
			if !withOrd {
				variant = "without ordering metadata"
			}
			t.Rows = append(t.Rows, []string{s.name, variant, fmt.Sprint(equal), fmt.Sprint(len(docs))})
		}
	}
	return t, nil
}

// E8 measures reconstruction time against document size.
func E8(seed int64) (*Table, error) {
	t := &Table{
		ID: "E8", Title: "reconstruction time vs document size",
		Header: []string{"elements/doc", "load", "reconstruct"},
		Notes:  []string{"expected shape: both near-linear in document size"},
	}
	const levels = 6
	d := deepPathDTD(levels)
	for _, fanout := range []int{1, 2, 3, 4} {
		docs := deepPathDocs(levels, fanout, 1)
		doc := docs[0]
		res, err := core.Map(d)
		if err != nil {
			return nil, err
		}
		m, err := ermap.Build(res.Model, ermap.Options{})
		if err != nil {
			return nil, err
		}
		db, err := openDB(m.Schema)
		if err != nil {
			return nil, err
		}
		loader, err := shred.NewLoader(res, m, db)
		if err != nil {
			return nil, err
		}
		observeLoader(loader)
		start := time.Now()
		st, err := loader.LoadDocument(doc, "big")
		if err != nil {
			return nil, err
		}
		loadTime := time.Since(start)
		recon := reconstruct.New(res, m, db)
		start = time.Now()
		if _, err := recon.Document(st.DocID); err != nil {
			return nil, err
		}
		reconTime := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(doc.Root.CountElements()),
			loadTime.Round(time.Microsecond).String(),
			reconTime.Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// E9 reports joins per query class per mapping over the paper DTD.
func E9(seed int64) (*Table, error) {
	d := dtd.MustParse(paper.Example1DTD)
	queries := []string{
		"/book",
		"/book/booktitle/text()",
		"/book/author",
		"/article/author/name",
		"/article/author[@id='wlee']",
		"/article/contactauthor[@authorid]",
		"//author",
		"/editor//editor",
	}
	t := &Table{
		ID: "E9", Title: "join predicates per query class (paper DTD)",
		Header: []string{"query", "mapping", "joins", "union arms"},
		Notes: []string{
			"the paper's step-2 distilling makes /book/booktitle a zero-relationship-join lookup on er mappings;",
			"edge pays one self-join per step; shared/hybrid collapse inlined steps",
		},
	}
	maps, err := baselines.All(d)
	if err != nil {
		return nil, err
	}
	for _, qs := range queries {
		q, err := pathquery.Parse(qs)
		if err != nil {
			return nil, err
		}
		for _, m := range maps {
			trans, err := m.Translator().Translate(q)
			if err != nil {
				t.Rows = append(t.Rows, []string{qs, m.Name(), "n/a", "-"})
				continue
			}
			t.Rows = append(t.Rows, []string{
				qs, m.Name(), fmt.Sprint(trans.Joins), fmt.Sprint(len(trans.SQLs)),
			})
		}
	}
	return t, nil
}

// E10 is the step-2 (attribute distilling) ablation.
func E10(seed int64) (*Table, error) {
	t := &Table{
		ID: "E10", Title: "ablation: attribute distilling (mapping step 2)",
		Header: []string{"dtd", "distill", "entities", "relationships", "tables", "columns", "leaf-query joins"},
		Notes: []string{
			"distilling folds (#PCDATA) leaves into parent columns: fewer tables and zero-join leaf access",
		},
	}
	for _, s := range suite(seed) {
		for _, skip := range []bool{false, true} {
			res, err := core.MapWith(s.d, core.Options{SkipDistill: skip})
			if err != nil {
				return nil, err
			}
			m, err := ermap.Build(res.Model, ermap.Options{})
			if err != nil {
				return nil, err
			}
			st := m.Schema.ComputeStats()
			joins := leafQueryJoins(res, m)
			t.Rows = append(t.Rows, []string{
				s.name, fmt.Sprint(!skip),
				fmt.Sprint(len(res.Model.Entities)), fmt.Sprint(len(res.Model.Relationships)),
				fmt.Sprint(st.Tables), fmt.Sprint(st.Columns), joins,
			})
		}
	}
	return t, nil
}

// leafQueryJoins finds a parent with a PCDATA leaf child in the original
// DTD and reports the joins of /parent/leaf.
func leafQueryJoins(res *core.Result, m *ermap.Mapping) string {
	d := res.Original
	for _, parent := range d.ElementOrder {
		decl := d.Elements[parent]
		if decl.Content.Kind != dtd.ContentChildren || decl.Content.Particle == nil {
			continue
		}
		for _, ch := range decl.Content.Particle.Children {
			if ch.Kind != dtd.PKName || ch.Occ.Repeatable() {
				continue
			}
			leaf := d.Element(ch.Name)
			if leaf == nil || !leaf.Content.IsPCDataOnly() || len(d.Atts(ch.Name)) > 0 {
				continue
			}
			tr := pathquery.NewERTranslator(res, m)
			q, err := pathquery.Parse("//" + parent + "/" + ch.Name)
			if err != nil {
				continue
			}
			trans, err := tr.Translate(q)
			if err != nil {
				continue
			}
			return fmt.Sprintf("%d (/%s/%s)", trans.Joins, parent, ch.Name)
		}
	}
	return "-"
}

// E11 is the secondary-index ablation for IDREF point lookups.
func E11(seed int64) (*Table, error) {
	d := dtd.MustParse(`
<!ELEMENT net (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED kind CDATA #REQUIRED>
`)
	res, err := core.Map(d)
	if err != nil {
		return nil, err
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		return nil, err
	}
	db, err := openDB(m.Schema)
	if err != nil {
		return nil, err
	}
	loader, err := shred.NewLoader(res, m, db)
	if err != nil {
		return nil, err
	}
	observeLoader(loader)
	var b strings.Builder
	b.WriteString("<net>")
	const nodes = 20000
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, `<node id="n%d" kind="k%d"/>`, i, i%100)
	}
	b.WriteString("</net>")
	if _, err := loader.LoadXML(b.String(), "net"); err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E11", Title: fmt.Sprintf("ablation: secondary index (point lookups over %d rows)", nodes),
		Header: []string{"index", "query", "latency"},
		Notes:  []string{"the unique (doc, a_id) index exists by construction; a_kind gets one explicitly"},
	}
	measure := func(label, sql string) error {
		const reps = 20
		if _, err := db.Query(sql); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.Query(sql); err != nil {
				return err
			}
		}
		lat := time.Since(start) / reps
		t.Rows = append(t.Rows, []string{label, sql, lat.Round(time.Microsecond).String()})
		return nil
	}
	pointSQL := `SELECT id FROM e_node WHERE a_kind = 'k42'`
	if err := measure("no", pointSQL); err != nil {
		return nil, err
	}
	if err := db.CreateIndex("ix_kind", "e_node", []string{"a_kind"}, false); err != nil {
		return nil, err
	}
	if err := measure("yes", pointSQL); err != nil {
		return nil, err
	}
	idSQL := `SELECT id FROM e_node WHERE doc = 1 AND a_id = 'n19999'`
	if err := measure("unique(doc,a_id)", idSQL); err != nil {
		return nil, err
	}
	// Range predicates: ordered index vs full scan.
	rangeSQL := `SELECT COUNT(*) FROM e_node WHERE a_id >= 'n100' AND a_id < 'n101'`
	if err := measure("no (range)", rangeSQL); err != nil {
		return nil, err
	}
	if err := db.CreateOrderedIndex("ox_id", "e_node", "a_id"); err != nil {
		return nil, err
	}
	if err := measure("ordered (range)", rangeSQL); err != nil {
		return nil, err
	}
	return t, nil
}

// E12 compares storage footprints.
func E12(seed int64) (*Table, error) {
	t := &Table{
		ID: "E12", Title: "storage footprint per mapping (200 synthetic documents)",
		Header: []string{"dtd", "mapping", "rows", "approx bytes"},
		Notes: []string{
			"expected shape: edge stores the most rows; inline variants the fewest; universal is widest per row",
		},
	}
	for _, s := range suite(seed) {
		docs, err := corpusFor(s.d, 200, seed+12)
		if err != nil {
			return nil, err
		}
		maps, err := baselines.All(s.d)
		if err != nil {
			return nil, err
		}
		for _, m := range maps {
			db, err := openDB(m.Schema())
			if err != nil {
				return nil, err
			}
			for i, doc := range docs {
				if _, err := m.Load(db, doc, fmt.Sprintf("d%d", i)); err != nil {
					return nil, fmt.Errorf("%s/%s: %w", s.name, m.Name(), err)
				}
			}
			t.Rows = append(t.Rows, []string{
				s.name, m.Name(), fmt.Sprint(db.TotalRows()), fmt.Sprint(db.ApproxBytes()),
			})
		}
	}
	return t, nil
}
