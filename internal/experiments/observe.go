package experiments

import (
	"fmt"
	"time"

	"xmlrdb/internal/engine"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/shred"
)

// Observe, Trace and SlowQuery are the harness's observability hooks:
// cmd/xmlbench sets them (typically to obs.Default) before running
// experiments, and every engine and loader the experiments construct is
// attached to them, so each run's table carries a metrics note
// alongside its timings. All are nil/zero by default, which keeps the
// measured hot paths instrumentation-free.
var (
	Observe   *obs.Metrics
	Trace     obs.Tracer
	SlowQuery time.Duration
)

// openDB opens an engine with the harness hooks attached and the schema
// created.
func openDB(schema *rel.Schema) (*engine.DB, error) {
	db := engine.Open()
	if Observe != nil {
		db.SetMetrics(Observe)
	}
	if Trace != nil {
		db.SetTracer(Trace)
	}
	if SlowQuery > 0 {
		db.SetSlowQueryThreshold(SlowQuery)
	}
	if err := db.CreateSchema(schema); err != nil {
		return nil, err
	}
	return db, nil
}

// observeLoader attaches the harness hooks to a loader.
func observeLoader(l *shred.Loader) *shred.Loader {
	if Observe != nil || Trace != nil {
		l.SetObserver(Observe, Trace)
	}
	return l
}

// snap captures the harness hub (zero value when detached), taken
// before an experiment so metricsNote can report the run's delta.
func snap() obs.Snapshot {
	if Observe == nil {
		return obs.Snapshot{}
	}
	return Observe.Snapshot()
}

// tableTotals sums the per-table counters of a snapshot.
func tableTotals(s obs.Snapshot) (rows, lockWaits int64) {
	for _, t := range s.Tables {
		rows += t.RowsInserted
		lockWaits += t.LockWaits
	}
	return
}

// metricsNote appends the run's metric deltas to the table when the
// harness hooks are attached (cmd/xmlbench -stats).
func metricsNote(t *Table, before obs.Snapshot) {
	if Observe == nil {
		return
	}
	after := Observe.Snapshot()
	ra, la := tableTotals(after)
	rb, lb := tableTotals(before)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"metrics: rows-inserted=%d lock-waits=%d selects=%d docs-loaded=%d docs-failed=%d joins-emitted=%d joins-avoided=%d",
		ra-rb, la-lb,
		after.Engine.Selects-before.Engine.Selects,
		after.Load.DocsLoaded-before.Load.DocsLoaded,
		after.Load.DocsFailed-before.Load.DocsFailed,
		after.Query.JoinsEmitted-before.Query.JoinsEmitted,
		after.Query.JoinsAvoided-before.Query.JoinsAvoided))
}
