package experiments

import (
	"fmt"
	"os"
	"time"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/meta"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/shred"
)

// E7b measures what durability costs and what recovery buys back: the
// same corpus is bulk-loaded into an in-memory engine and into durable
// stores at several snapshot intervals, then each durable store is
// reopened cold and its recovery time and replayed-frame count are
// recorded. Smaller intervals trade more snapshot work during loading
// for shorter logs (and faster recovery) afterwards.
func E7b(seed int64) (*Table, error) {
	t := &Table{
		ID: "E7b", Title: "crash recovery cost vs snapshot interval (er mapping, 150 synthetic documents)",
		Header: []string{"config", "load", "docs/s", "wal-KB", "frames", "fsyncs", "snapshots", "recover", "replayed", "docs-back"},
		Notes: []string{
			"expected shape: WAL-only loads fastest but replays every frame on recovery; frequent snapshots shorten the log (fewer replayed frames, faster recovery) at the price of snapshot writes during loading",
		},
	}
	d := dtd.MustParse(paper.Example1DTD)
	docs, err := corpusFor(d, 150, seed)
	if err != nil {
		return nil, err
	}
	res, err := core.Map(d)
	if err != nil {
		return nil, err
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		// interval < 0 means in-memory (no durability); 0 means WAL only.
		interval int
	}{
		{"memory", -1},
		{"wal-only", 0},
		{"snap=500", 500},
		{"snap=100", 100},
		{"snap=25", 25},
	}
	for _, cfg := range configs {
		hub := obs.New()
		var (
			db  *engine.DB
			dir string
		)
		if cfg.interval < 0 {
			db = engine.Open()
		} else {
			dir, err = os.MkdirTemp("", "xmlrdb-e7b-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			db, err = engine.OpenAtOpts(dir, engine.DurabilityOptions{
				SnapshotEvery: cfg.interval, Metrics: hub,
			})
			if err != nil {
				return nil, err
			}
		}
		if err := db.CreateSchema(m.Schema); err != nil {
			return nil, err
		}
		if err := meta.Store(db, res, m); err != nil {
			return nil, err
		}
		l, err := shred.NewLoader(res, m, db)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := l.LoadCorpus(docs, 4); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		loadElapsed := time.Since(start)
		loaded := db.RowCount("x_docs")
		if err := db.Close(); err != nil {
			return nil, err
		}
		s := hub.Snapshot()

		recover, replayed, docsBack := "-", "-", "-"
		if cfg.interval >= 0 {
			rhub := obs.New()
			rstart := time.Now()
			rdb, err := engine.OpenAtOpts(dir, engine.DurabilityOptions{Metrics: rhub})
			if err != nil {
				return nil, fmt.Errorf("%s: reopen: %w", cfg.name, err)
			}
			relapsed := time.Since(rstart)
			back := rdb.RowCount("x_docs")
			if back != loaded {
				return nil, fmt.Errorf("%s: recovered %d documents, loaded %d", cfg.name, back, loaded)
			}
			if err := rdb.Close(); err != nil {
				return nil, err
			}
			recover = relapsed.Round(time.Millisecond).String()
			replayed = fmt.Sprint(rhub.Snapshot().WAL.ReplayFrames)
			docsBack = fmt.Sprint(back)
		}
		t.Rows = append(t.Rows, []string{
			cfg.name,
			loadElapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(docs))/loadElapsed.Seconds()),
			fmt.Sprint(s.WAL.Bytes / 1024),
			fmt.Sprint(s.WAL.Frames),
			fmt.Sprint(s.WAL.Fsyncs),
			fmt.Sprint(s.WAL.Snapshots),
			recover, replayed, docsBack,
		})
	}
	return t, nil
}
