package sqldb

import (
	"testing"
)

func TestLexTokens(t *testing.T) {
	toks, err := lex(`SELECT a1, 'str''x', 3.14, "quoted id" FROM t -- comment
WHERE a <= 3 AND b <> 4 AND c != 5 OR d >= 6`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := map[int]string{
		0: "SELECT", 2: ",", 3: "str'x", 5: "3.14", 7: "quoted id",
	}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[3] != TokString || kinds[5] != TokNumber || kinds[7] != TokIdent {
		t.Errorf("kinds = %v", kinds[:8])
	}
	// Comment swallowed; operators tokenized.
	joined := ""
	for _, x := range texts {
		joined += x + " "
	}
	for _, op := range []string{"<=", "<>", "!=", ">="} {
		found := false
		for _, x := range texts {
			if x == op {
				found = true
			}
		}
		if !found {
			t.Errorf("operator %q missing in %v", op, texts)
		}
	}
	_ = joined
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT 'unterminated`,
		`SELECT "unterminated`,
		`SELECT a ! b`,
		`SELECT a # b`,
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestParseMoreErrors(t *testing.T) {
	cases := []string{
		`CREATE UNIQUE TABLE t (a INTEGER)`,
		`CREATE ORDERED TABLE t (a INTEGER)`,
		`DROP WIDGET w`,
		`INSERT INTO t (a VALUES (1)`,
		`SELECT * FROM t GROUP BY`,
		`SELECT * FROM t ORDER`,
		`SELECT * FROM t WHERE a IS BOGUS`,
		`SELECT * FROM t JOIN u`,
		`CREATE TABLE t (a INTEGER, FOREIGN KEY (a) REFERENCES)`,
		`UPDATE t SET a WHERE 1`,
		`DELETE t`,
		`INSERT t VALUES (1)`,
		`SELECT COUNT( FROM t`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSemicolonAndCase(t *testing.T) {
	if _, err := Parse(`select a from t;`); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
	if _, err := Parse(`SeLeCt a FrOm t`); err != nil {
		t.Errorf("mixed case: %v", err)
	}
	stmts, err := ParseScript(`;;SELECT a FROM t;;`)
	if err != nil || len(stmts) != 1 {
		t.Errorf("stray semicolons: %v %d", err, len(stmts))
	}
	if _, err := ParseScript(`SELECT a FROM t SELECT b FROM u`); err == nil {
		t.Error("missing separator should fail")
	}
}

func TestParseOrderedIndex(t *testing.T) {
	st, err := Parse(`CREATE ORDERED INDEX ox ON t (k)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if !ci.Ordered || ci.Unique {
		t.Errorf("flags = %+v", ci)
	}
}
