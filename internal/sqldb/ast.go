package sqldb

import "xmlrdb/internal/rel"

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// Select is a SELECT statement.
type Select struct {
	// Distinct deduplicates result rows.
	Distinct bool
	// Items are the projection list; nil means "*".
	Items []SelectItem
	// From lists the base tables (cross product unless joined by ON or
	// WHERE predicates).
	From []TableRef
	// Joins are explicit JOIN ... ON clauses, applied left to right
	// after From[0].
	Joins []Join
	// Where is the filter predicate, or nil.
	Where Expr
	// GroupBy lists grouping expressions.
	GroupBy []Expr
	// Having filters groups.
	Having Expr
	// OrderBy lists sort keys.
	OrderBy []OrderItem
	// Limit is the maximum row count (-1 for none); Offset skips rows.
	Limit, Offset int
}

func (*Select) stmt() {}

// SelectItem is one projection.
type SelectItem struct {
	// Expr is the projected expression; nil with Star set means "*" or
	// "t.*".
	Expr Expr
	// Alias renames the output column.
	Alias string
	// Star marks a wildcard item; Table qualifies "t.*".
	Star  bool
	Table string
}

// TableRef is a table with an optional alias.
type TableRef struct {
	// Table is the table name; Alias the binding name (defaults to Table).
	Table, Alias string
}

// Name returns the binding name of the reference.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is one JOIN ... ON clause.
type Join struct {
	// Ref is the joined table.
	Ref TableRef
	// On is the join predicate.
	On Expr
	// Left marks LEFT OUTER joins.
	Left bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	// Expr is the sort expression.
	Expr Expr
	// Desc sorts descending.
	Desc bool
}

// Insert is an INSERT statement.
type Insert struct {
	// Table is the target table.
	Table string
	// Columns lists the target columns; empty means all, in order.
	Columns []string
	// Rows are the VALUES tuples.
	Rows [][]Expr
}

func (*Insert) stmt() {}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	// Def is the parsed table definition.
	Def *rel.Table
}

func (*CreateTable) stmt() {}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	// Name is the index name; Table and Columns define the key.
	Name, Table string
	Columns     []string
	// Unique enforces key uniqueness.
	Unique bool
	// Ordered builds a sorted range-scan index (single column).
	Ordered bool
}

func (*CreateIndex) stmt() {}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	// Table is the table to drop.
	Table string
	// IfExists suppresses the missing-table error.
	IfExists bool
}

func (*DropTable) stmt() {}

// DropIndex is a DROP INDEX statement.
type DropIndex struct {
	// Name is the index to drop.
	Name string
	// IfExists suppresses the missing-index error.
	IfExists bool
}

func (*DropIndex) stmt() {}

// Update is an UPDATE statement.
type Update struct {
	// Table is the target table.
	Table string
	// Set lists column assignments.
	Set []Assignment
	// Where filters the rows to update, or nil for all.
	Where Expr
}

func (*Update) stmt() {}

// Assignment is one SET column = expr.
type Assignment struct {
	// Column is the target column.
	Column string
	// Value is the assigned expression.
	Value Expr
}

// Delete is a DELETE statement.
type Delete struct {
	// Table is the target table.
	Table string
	// Where filters the rows to delete, or nil for all.
	Where Expr
}

func (*Delete) stmt() {}

// Expr is any expression node.
type Expr interface{ expr() }

// Lit is a literal value: int64, float64, string, bool or nil.
type Lit struct {
	// Value holds the literal.
	Value any
}

func (*Lit) expr() {}

// Col is a (possibly qualified) column reference.
type Col struct {
	// Table is the qualifier ("" when unqualified); Name the column.
	Table, Name string
}

func (*Col) expr() {}

// BinOp kinds.
const (
	OpEq  = "="
	OpNe  = "!="
	OpLt  = "<"
	OpLe  = "<="
	OpGt  = ">"
	OpGe  = ">="
	OpAnd = "AND"
	OpOr  = "OR"
	OpAdd = "+"
	OpSub = "-"
	OpMul = "*"
	OpDiv = "/"
	OpMod = "%"
)

// Bin is a binary operation.
type Bin struct {
	// Op is one of the Op* constants.
	Op string
	// L and R are the operands.
	L, R Expr
}

func (*Bin) expr() {}

// Not is logical negation.
type Not struct {
	// X is the negated expression.
	X Expr
}

func (*Not) expr() {}

// IsNull tests an expression against NULL.
type IsNull struct {
	// X is the tested expression; Negate flips to IS NOT NULL.
	X      Expr
	Negate bool
}

func (*IsNull) expr() {}

// In tests membership in a literal list.
type In struct {
	// X is the tested expression; List the candidates.
	X    Expr
	List []Expr
	// Negate flips to NOT IN.
	Negate bool
}

func (*In) expr() {}

// Like is a SQL LIKE pattern match (% and _ wildcards).
type Like struct {
	// X is the tested expression; Pattern the literal pattern.
	X       Expr
	Pattern string
	// Negate flips to NOT LIKE.
	Negate bool
}

func (*Like) expr() {}

// Call is a function or aggregate call.
type Call struct {
	// Fn is the upper-cased function name (COUNT, SUM, AVG, MIN, MAX,
	// LENGTH, LOWER, UPPER, ABS, COALESCE).
	Fn string
	// Args are the arguments; Star marks COUNT(*).
	Args []Expr
	Star bool
	// Distinct marks COUNT(DISTINCT x).
	Distinct bool
}

func (*Call) expr() {}

// IsAggregate reports whether the call is an aggregate function.
func (c *Call) IsAggregate() bool {
	switch c.Fn {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}
