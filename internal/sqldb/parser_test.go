package sqldb

import (
	"testing"

	"xmlrdb/internal/rel"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseSelectBasic(t *testing.T) {
	st := mustParse(t, `SELECT a, b.c AS x, COUNT(*) FROM t1, t2 b WHERE a = 1 AND b.c != 'z' ORDER BY a DESC LIMIT 10 OFFSET 2`)
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "x" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if c, ok := sel.Items[2].Expr.(*Call); !ok || c.Fn != "COUNT" || !c.Star {
		t.Errorf("count(*) = %#v", sel.Items[2].Expr)
	}
	if len(sel.From) != 2 || sel.From[1].Name() != "b" {
		t.Errorf("from = %+v", sel.From)
	}
	if sel.Limit != 10 || sel.Offset != 2 {
		t.Errorf("limit/offset = %d/%d", sel.Limit, sel.Offset)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestParseJoins(t *testing.T) {
	st := mustParse(t, `SELECT * FROM a JOIN b ON a.id = b.aid LEFT JOIN c ON b.id = c.bid`)
	sel := st.(*Select)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	if sel.Joins[0].Left || !sel.Joins[1].Left {
		t.Errorf("left flags = %v %v", sel.Joins[0].Left, sel.Joins[1].Left)
	}
	if !sel.Items[0].Star {
		t.Error("star item")
	}
}

func TestParseGroupBy(t *testing.T) {
	st := mustParse(t, `SELECT doc, COUNT(*) n FROM e_author GROUP BY doc HAVING COUNT(*) > 1`)
	sel := st.(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("groupby/having = %v %v", sel.GroupBy, sel.Having)
	}
	if sel.Items[1].Alias != "n" {
		t.Errorf("bare alias = %q", sel.Items[1].Alias)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []string{
		`SELECT * FROM t WHERE a IS NULL`,
		`SELECT * FROM t WHERE a IS NOT NULL`,
		`SELECT * FROM t WHERE a IN (1, 2, 3)`,
		`SELECT * FROM t WHERE a NOT IN ('x')`,
		`SELECT * FROM t WHERE a LIKE 'foo%'`,
		`SELECT * FROM t WHERE a NOT LIKE '%bar_'`,
		`SELECT * FROM t WHERE NOT (a = 1 OR b < 2)`,
		`SELECT * FROM t WHERE -a + 2 * b >= c % 3`,
		`SELECT LENGTH(a), LOWER(b), COALESCE(c, 'd') FROM t`,
		`SELECT COUNT(DISTINCT a) FROM t`,
		`SELECT t.* FROM t`,
		`SELECT * FROM t WHERE b = TRUE AND c = FALSE AND d = NULL`,
	}
	for _, src := range cases {
		mustParse(t, src)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'it''s')`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit := ins.Rows[1][1].(*Lit); lit.Value != "it's" {
		t.Errorf("escaped quote = %q", lit.Value)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (
  id INTEGER NOT NULL,
  name TEXT,
  score FLOAT,
  ok BOOLEAN,
  PRIMARY KEY (id),
  UNIQUE (name),
  FOREIGN KEY (name) REFERENCES other (nm)
)`)
	ct := st.(*CreateTable)
	def := ct.Def
	if len(def.Columns) != 4 || def.Columns[0].Type != rel.TypeInt || !def.Columns[0].NotNull {
		t.Fatalf("columns = %+v", def.Columns)
	}
	if len(def.PrimaryKey) != 1 || len(def.Uniques) != 1 || len(def.ForeignKeys) != 1 {
		t.Fatalf("constraints = %+v", def)
	}
	if def.ForeignKeys[0].RefTable != "other" {
		t.Errorf("fk = %+v", def.ForeignKeys[0])
	}
}

func TestParseInlinePrimaryKey(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL)`)
	def := st.(*CreateTable).Def
	if len(def.PrimaryKey) != 1 || def.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", def.PrimaryKey)
	}
	if !def.Columns[1].NotNull {
		t.Error("v not null")
	}
}

func TestParseIndexAndDrop(t *testing.T) {
	ci := mustParse(t, `CREATE UNIQUE INDEX ix ON t (a, b)`).(*CreateIndex)
	if !ci.Unique || ci.Table != "t" || len(ci.Columns) != 2 {
		t.Fatalf("index = %+v", ci)
	}
	dt := mustParse(t, `DROP TABLE IF EXISTS t`).(*DropTable)
	if !dt.IfExists || dt.Table != "t" {
		t.Fatalf("drop = %+v", dt)
	}
	di := mustParse(t, `DROP INDEX ix`).(*DropIndex)
	if di.Name != "ix" {
		t.Fatalf("drop index = %+v", di)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`).(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	del := mustParse(t, `DELETE FROM t WHERE a < 5`).(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseScriptMulti(t *testing.T) {
	stmts, err := ParseScript(`
CREATE TABLE a (x INTEGER);
INSERT INTO a VALUES (1);
-- a comment
SELECT * FROM a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT 'x'`,
		`INSERT INTO t VALUES 1`,
		`CREATE TABLE t (a BADTYPE)`,
		`CREATE WIDGET w`,
		`SELECT * FROM t WHERE a LIKE b`,
		`SELECT * FROM t; garbage`,
		`SELECT * FROM t WHERE a = 'unterminated`,
		`UPDATE t SET`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAggregateDetection(t *testing.T) {
	if !(&Call{Fn: "SUM"}).IsAggregate() || (&Call{Fn: "LENGTH"}).IsAggregate() {
		t.Error("IsAggregate misclassifies")
	}
}
