package sqldb

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSQLParserNeverPanics exercises the SQL parser with token soup.
func TestSQLParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pieces := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "CREATE",
		"TABLE", "INDEX", "UPDATE", "SET", "DELETE", "JOIN", "ON", "GROUP",
		"BY", "ORDER", "LIMIT", "a", "t", "*", ",", "(", ")", "=", "<", ">",
		"1", "'s'", "NULL", "AND", "OR", "NOT", "COUNT", ";", "IS", "IN",
		"LIKE", "+", "-", "/", "%", ".",
	}
	for i := 0; i < 5000; i++ {
		var b strings.Builder
		n := 1 + rng.Intn(14)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseScript(src)
		}()
	}
}
