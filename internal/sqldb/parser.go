package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"xmlrdb/internal/rel"
)

// Parse parses one SQL statement (a trailing semicolon is permitted).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.cur().Text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.accept(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(";") && !p.atEOF() {
			return nil, p.errf("expected ';' between statements, found %q", p.cur().Text)
		}
	}
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at byte %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// acceptKw consumes an identifier token matching the keyword
// (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.cur()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().Text)
	}
	return nil
}

// accept consumes an operator token with the given text.
func (p *parser) accept(op string) bool {
	t := p.cur()
	if t.Kind == TokOp && t.Text == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(op string) error {
	if !p.accept(op) {
		return p.errf("expected %q, found %q", op, p.cur().Text)
	}
	return nil
}

// peekKw reports whether the current token is the keyword.
func (p *parser) peekKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %q", t.Text)
	}
	p.i++
	return t.Text, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.peekKw("SELECT"):
		return p.selectStmt()
	case p.peekKw("INSERT"):
		return p.insertStmt()
	case p.peekKw("CREATE"):
		return p.createStmt()
	case p.peekKw("DROP"):
		return p.dropStmt()
	case p.peekKw("UPDATE"):
		return p.updateStmt()
	case p.peekKw("DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errf("expected a statement, found %q", p.cur().Text)
	}
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.acceptKw("DISTINCT")
	// Projection list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	sel.From = append(sel.From, ref)
	for {
		switch {
		case p.accept(","):
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
		case p.peekKw("JOIN") || p.peekKw("INNER") || p.peekKw("LEFT"):
			left := false
			if p.acceptKw("LEFT") {
				left = true
				p.acceptKw("OUTER")
			} else {
				p.acceptKw("INNER")
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Ref: ref, On: on, Left: left})
		default:
			goto afterFrom
		}
	}
afterFrom:
	if p.acceptKw("WHERE") {
		if sel.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		if sel.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.acceptKw("OFFSET") {
			if sel.Offset, err = p.intLit(); err != nil {
				return nil, err
			}
		}
	}
	return sel, nil
}

func (p *parser) intLit() (int, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, p.errf("expected a number, found %q", t.Text)
	}
	p.i++
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*"
	if p.cur().Kind == TokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].Kind == TokOp && p.toks[p.i+1].Text == "." &&
		p.toks[p.i+2].Kind == TokOp && p.toks[p.i+2].Text == "*" {
		table := p.cur().Text
		p.i += 3
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		if item.Alias, err = p.ident(); err != nil {
			return SelectItem{}, err
		}
	} else if p.cur().Kind == TokIdent && !p.peekAnyKw() {
		// bare alias
		item.Alias, _ = p.ident()
	}
	return item, nil
}

// peekAnyKw reports whether the current identifier is a reserved clause
// keyword (so it cannot be a bare alias).
func (p *parser) peekAnyKw() bool {
	for _, kw := range []string{"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
		"JOIN", "INNER", "LEFT", "ON", "AS", "AND", "OR", "NOT", "ASC", "DESC", "OFFSET",
		"SET", "VALUES"} {
		if p.peekKw(kw) {
			return true
		}
	}
	return false
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKw("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if p.cur().Kind == TokIdent && !p.peekAnyKw() {
		ref.Alias, _ = p.ident()
	}
	return ref, nil
}

func (p *parser) insertStmt() (*Insert, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			return ins, nil
		}
	}
}

func (p *parser) createStmt() (Stmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKw("UNIQUE")
	ordered := p.acceptKw("ORDERED")
	switch {
	case p.acceptKw("TABLE"):
		if unique || ordered {
			return nil, p.errf("UNIQUE/ORDERED apply to indexes, not tables")
		}
		return p.createTableTail()
	case p.acceptKw("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique, Ordered: ordered}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) createTableTail() (*CreateTable, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	def := &rel.Table{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekKw("PRIMARY"):
			p.acceptKw("PRIMARY")
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenNames()
			if err != nil {
				return nil, err
			}
			def.PrimaryKey = cols
		case p.peekKw("UNIQUE"):
			p.acceptKw("UNIQUE")
			cols, err := p.parenNames()
			if err != nil {
				return nil, err
			}
			def.Uniques = append(def.Uniques, cols)
		case p.peekKw("FOREIGN"):
			p.acceptKw("FOREIGN")
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenNames()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("REFERENCES"); err != nil {
				return nil, err
			}
			refTable, err := p.ident()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parenNames()
			if err != nil {
				return nil, err
			}
			def.ForeignKeys = append(def.ForeignKeys, rel.ForeignKey{
				Columns: cols, RefTable: refTable, RefColumns: refCols,
			})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeKw, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, ok := rel.TypeFromKeyword(typeKw)
			if !ok {
				return nil, p.errf("unknown column type %q", typeKw)
			}
			col := rel.Column{Name: colName, Type: typ}
			for {
				switch {
				case p.acceptKw("NOT"):
					if err := p.expectKw("NULL"); err != nil {
						return nil, err
					}
					col.NotNull = true
				case p.acceptKw("PRIMARY"):
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
					def.PrimaryKey = []string{colName}
				default:
					goto colDone
				}
			}
		colDone:
			def.Columns = append(def.Columns, col)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Def: def}, nil
}

func (p *parser) parenNames() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) dropStmt() (Stmt, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		ifExists, err := p.ifExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Table: name, IfExists: ifExists}, nil
	case p.acceptKw("INDEX"):
		ifExists, err := p.ifExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name, IfExists: ifExists}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) ifExists() (bool, error) {
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) updateStmt() (*Update, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		if up.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) deleteStmt() (*Delete, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKw("WHERE") {
		if del.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

// Expression grammar, lowest to highest precedence:
// OR, AND, NOT, comparison/IS/IN/LIKE, + -, * / %, unary -, primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("="):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpEq, L: l, R: r}, nil
	case p.accept("!="), p.accept("<>"):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpNe, L: l, R: r}, nil
	case p.accept("<="):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpLe, L: l, R: r}, nil
	case p.accept(">="):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpGe, L: l, R: r}, nil
	case p.accept("<"):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpLt, L: l, R: r}, nil
	case p.accept(">"):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpGt, L: l, R: r}, nil
	case p.peekKw("IS"):
		p.acceptKw("IS")
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	case p.peekKw("NOT"), p.peekKw("IN"), p.peekKw("LIKE"):
		neg := p.acceptKw("NOT")
		switch {
		case p.acceptKw("IN"):
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &In{X: l, List: list, Negate: neg}, nil
		case p.acceptKw("LIKE"):
			t := p.cur()
			if t.Kind != TokString {
				return nil, p.errf("LIKE requires a string literal pattern")
			}
			p.i++
			return &Like{X: l, Pattern: t.Text, Negate: neg}, nil
		default:
			return nil, p.errf("expected IN or LIKE after NOT")
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: OpAdd, L: l, R: r}
		case p.accept("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: OpMul, L: l, R: r}
		case p.accept("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: OpDiv, L: l, R: r}
		case p.accept("%"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpSub, L: &Lit{Value: int64(0)}, R: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.i++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &Lit{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.Text)
		}
		return &Lit{Value: n}, nil
	case TokString:
		p.i++
		return &Lit{Value: t.Text}, nil
	case TokOp:
		if t.Text == "(" {
			p.i++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.Text)
	case TokIdent:
		switch strings.ToUpper(t.Text) {
		case "NULL":
			p.i++
			return &Lit{Value: nil}, nil
		case "TRUE":
			p.i++
			return &Lit{Value: true}, nil
		case "FALSE":
			p.i++
			return &Lit{Value: false}, nil
		}
		name := t.Text
		p.i++
		// Function call?
		if p.accept("(") {
			call := &Call{Fn: strings.ToUpper(name)}
			if p.accept("*") {
				call.Star = true
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.accept(")") {
				return call, nil
			}
			call.Distinct = p.acceptKw("DISTINCT")
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Col{Table: name, Name: col}, nil
		}
		return &Col{Name: name}, nil
	default:
		return nil, p.errf("unexpected end of expression")
	}
}
