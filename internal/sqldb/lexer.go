// Package sqldb implements a lexer, AST and parser for the SQL subset
// the engine executes: CREATE TABLE / CREATE INDEX / DROP TABLE, INSERT,
// SELECT (joins, WHERE, GROUP BY with aggregates, HAVING, ORDER BY,
// LIMIT/OFFSET, DISTINCT), UPDATE and DELETE.
package sqldb

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	// TokEOF marks end of input.
	TokEOF TokKind = iota + 1
	// TokIdent is an identifier or keyword (keywords are matched
	// case-insensitively by the parser).
	TokIdent
	// TokNumber is an integer or float literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokOp is an operator or punctuation.
	TokOp
)

// Token is one lexical token.
type Token struct {
	// Kind classifies the token.
	Kind TokKind
	// Text is the raw token text (unquoted for strings).
	Text string
	// Pos is the byte offset in the input.
	Pos int
}

// lexError is a lexical error with position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql: at byte %d: %s", e.pos, e.msg) }

// lex tokenizes a SQL string.
func lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentChar(src[i]) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (src[i] >= '0' && src[i] <= '9' || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:i], Pos: start})
		case c == '\'':
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &lexError{pos: i, msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Pos: i})
		case strings.ContainsRune("(),.*=+-/%", rune(c)):
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOp, Text: src[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "!=", Pos: i})
				i += 2
			} else {
				return nil, &lexError{pos: i, msg: "unexpected '!'"}
			}
		case c == ';':
			toks = append(toks, Token{Kind: TokOp, Text: ";", Pos: i})
			i++
		case c == '"':
			// Double-quoted identifier.
			i++
			start := i
			for i < n && src[i] != '"' {
				i++
			}
			if i >= n {
				return nil, &lexError{pos: i, msg: "unterminated quoted identifier"}
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Pos: start})
			i++
		default:
			return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
