package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"xmlrdb"
	"xmlrdb/internal/paper"
)

// benchServer is the E15 fixture: 20 copies of each paper document
// behind the serving layer, tracing configured by sample.
func benchServer(b *testing.B, sample int) (*httptest.Server, func()) {
	b.Helper()
	p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := p.LoadXML(paper.BookXML, fmt.Sprintf("book-%d", i)); err != nil {
			b.Fatal(err)
		}
		if _, err := p.LoadXML(paper.ArticleXML, fmt.Sprintf("article-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	s := New(p, Options{TraceSample: sample})
	ts := httptest.NewServer(s.Handler())
	return ts, func() { ts.Close(); p.Close() }
}

func benchPaths(b *testing.B, ts *httptest.Server) {
	b.Helper()
	queries := []string{
		"/book/booktitle/text()", "/article/title/text()", "/book/author",
		"/article/author/name", "/article/contactauthor[@authorid]", "//author",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		resp, err := http.Get(ts.URL + "/path?q=" + url.QueryEscape(q))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func BenchmarkPathUntraced(b *testing.B) {
	ts, done := benchServer(b, -1)
	defer done()
	benchPaths(b, ts)
}

func BenchmarkPathTraced(b *testing.B) {
	ts, done := benchServer(b, 1)
	defer done()
	benchPaths(b, ts)
}
