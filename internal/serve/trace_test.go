package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xmlrdb/internal/obs"
)

// TestRequestTraceEndToEnd drives a /query request with a caller-chosen
// X-Request-ID and asserts the full trace — serve root, engine.select,
// engine.plan and at least one operator span — is retrievable from the
// flight recorder at /debug/traces/{id}.
func TestRequestTraceEndToEnd(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/query?sql=SELECT+COUNT(*)+FROM+e_author", nil)
	req.Header.Set("X-Request-ID", "trace-e2e-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/query = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-e2e-1" {
		t.Fatalf("X-Request-ID echoed as %q", got)
	}

	code, body := get(t, ts, "/debug/traces/trace-e2e-1")
	if code != 200 {
		t.Fatalf("/debug/traces/{id} = %d %q", code, body)
	}
	var rec obs.TraceRecord
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if rec.ID != "trace-e2e-1" || rec.DurNS <= 0 {
		t.Fatalf("trace record = %+v", rec)
	}

	byName := map[string]obs.SpanRecord{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["serve.query"]
	if !ok || root.Parent != 0 {
		t.Fatalf("missing root serve.query span: %v", names(rec.Spans))
	}
	sel, ok := byName["engine.select"]
	if !ok {
		t.Fatalf("missing engine.select span: %v", names(rec.Spans))
	}
	if _, ok := byName["engine.plan"]; !ok {
		t.Fatalf("missing engine.plan span: %v", names(rec.Spans))
	}
	var opSpans int
	for _, sp := range rec.Spans {
		if !strings.HasPrefix(sp.Name, "op.") {
			continue
		}
		opSpans++
		if sp.Parent != sel.ID {
			t.Errorf("%s parented to %d, want engine.select %d", sp.Name, sp.Parent, sel.ID)
		}
		var hasRows bool
		for _, a := range sp.Attrs {
			if a.Key == "rows" {
				hasRows = true
			}
		}
		if !hasRows {
			t.Errorf("%s has no rows attr: %+v", sp.Name, sp.Attrs)
		}
	}
	if opSpans == 0 {
		t.Fatalf("no operator spans recorded: %v", names(rec.Spans))
	}

	// The listing shows the same trace.
	code, body = get(t, ts, "/debug/traces")
	if code != 200 || !strings.Contains(body, "trace-e2e-1") {
		t.Fatalf("/debug/traces = %d %q", code, body)
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceSamplingOff proves TraceSample < 0 disables tracing: no
// trace header, nothing recorded.
func TestTraceSamplingOff(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{TraceSample: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/query?sql=SELECT+COUNT(*)+FROM+e_author")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "" {
		t.Fatalf("untraced request got X-Request-ID %q", got)
	}
	if l := s.Recorder().List(); len(l) != 0 {
		t.Fatalf("recorder holds %d traces with sampling off", len(l))
	}
}

// TestTraceSamplingOneInN checks round-robin sampling records roughly
// 1/N of requests.
func TestTraceSamplingOneInN(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{TraceSample: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		resp, err := ts.Client().Get(ts.URL + "/query?sql=SELECT+COUNT(*)+FROM+e_author")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := len(s.Recorder().List()); got != 2 {
		t.Fatalf("1-in-4 sampling over 8 requests recorded %d traces, want 2", got)
	}
}

// TestMetricsEndpoint asserts /metrics serves parseable Prometheus
// text after live traffic.
func TestMetricsEndpoint(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/query?sql=SELECT+COUNT(*)+FROM+e_author")
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		"# TYPE xmlrdb_engine_selects_total counter",
		"xmlrdb_serve_requests_total",
		"xmlrdb_engine_exec_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestQueryStatsEndpoint asserts /debug/querystats aggregates by
// fingerprint with est-vs-actual row accounting after live queries.
func TestQueryStatsEndpoint(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two literal variants of one shape plus a distinct shape.
	for _, q := range []string{
		"/query?sql=SELECT+*+FROM+e_author+WHERE+id+=+1",
		"/query?sql=SELECT+*+FROM+e_author+WHERE+id+=+2",
		"/query?sql=SELECT+COUNT(*)+FROM+e_book",
	} {
		if code, body := get(t, ts, q); code != 200 {
			t.Fatalf("%s = %d %q", q, code, body)
		}
	}

	code, body := get(t, ts, "/debug/querystats")
	if code != 200 {
		t.Fatalf("/debug/querystats = %d", code)
	}
	var stats []obs.QueryStatSnapshot
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("querystats not JSON: %v (%s)", err, body)
	}
	if len(stats) < 2 {
		t.Fatalf("querystats = %d shapes, want >= 2", len(stats))
	}
	var merged *obs.QueryStatSnapshot
	for i := range stats {
		if stats[i].Fingerprint == "SELECT * FROM e_author WHERE id = ?" {
			merged = &stats[i]
		}
	}
	if merged == nil {
		t.Fatalf("no merged fingerprint in %s", body)
	}
	if merged.Count != 2 {
		t.Fatalf("merged count = %d, want 2", merged.Count)
	}
	if len(merged.LastOps) == 0 {
		t.Fatalf("no per-operator digest: %+v", merged)
	}
}
