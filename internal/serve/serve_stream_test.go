package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlrdb/internal/paper"
	"xmlrdb/internal/xmltree"
)

// widenAuthors loads n copies of the paper document so e_author holds
// 2(n+1) rows — enough for cross joins to produce large results.
func widenAuthors(t *testing.T, p interface {
	ParseDocument(string) (*xmltree.Document, error)
	LoadCorpus([]*xmltree.Document, int) ([]int64, error)
}, n int) {
	t.Helper()
	doc, err := p.ParseDocument(paper.BookXML)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		docs[i] = doc
	}
	if _, err := p.LoadCorpus(docs, 4); err != nil {
		t.Fatal(err)
	}
}

// flushRecorder counts the handler's explicit flushes.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++; f.ResponseRecorder.Flush() }

// TestQueryResponseStreams checks /query emits the body incrementally:
// the handler must flush after the first row and then periodically,
// not once at the end — the first byte reaches the client while the
// engine is still producing rows.
func TestQueryResponseStreams(t *testing.T) {
	p := testPipeline(t)
	widenAuthors(t, p, 49) // 100 author rows; the cross join yields 10000
	s := New(p, Options{RequestTimeout: 30 * time.Second})

	w := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	req := httptest.NewRequest("GET", "/query?sql="+
		"SELECT+a.id+FROM+e_author+a,+e_author+b", nil)
	s.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status = %d, body %q", w.Code, w.Body.String())
	}
	var qr struct {
		Cols []string `json:"cols"`
		Rows [][]any  `json:"rows"`
		N    int      `json:"n"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if qr.N != 10000 || len(qr.Rows) != 10000 {
		t.Fatalf("n = %d, rows = %d, want 10000", qr.N, len(qr.Rows))
	}
	// First row + one per streamFlushEvery rows.
	if want := 10000 / streamFlushEvery; w.flushes < want {
		t.Errorf("flushes = %d, want >= %d (response not streamed)", w.flushes, want)
	}
	if got := p.Obs.ServeRowsStreamed.Load(); got != 10000 {
		t.Errorf("ServeRowsStreamed = %d, want 10000", got)
	}
}

// TestClientDisconnectAbortsScan starts a huge streamed query, reads a
// little of the body and disconnects. The write-side backpressure plus
// the request context's cancellation must abort the scan mid-stream:
// the engine must not produce all million rows.
func TestClientDisconnectAbortsScan(t *testing.T) {
	p := testPipeline(t)
	widenAuthors(t, p, 49) // 100 author rows; the 3-way cross join yields 1e6
	s := New(p, Options{RequestTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+
		"/query?sql="+"SELECT+a.id+FROM+e_author+a,+e_author+b,+e_author+c", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first chunk, then walk away mid-body.
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatalf("reading the stream head: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for p.Obs.ServeInflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never finished after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	const total = 1_000_000
	if got := p.Obs.ServeRowsStreamed.Load(); got >= total {
		t.Fatalf("engine streamed all %d rows despite the disconnect", got)
	}
}

// TestPathExplainIncludesPhysicalPlan checks /path?explain=1 now
// renders the executed operator tree after the translation report.
func TestPathExplainIncludesPhysicalPlan(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/path?q=/book/author&explain=1")
	if code != 200 {
		t.Fatalf("explain = %d %q", code, body)
	}
	for _, want := range []string{"-- plan: ", "-- physical plan (arm 1):", "rows=", "time="} {
		if !strings.Contains(body, want) {
			t.Errorf("explain report lacks %q:\n%s", want, body)
		}
	}
}
