package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlrdb"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/xmltree"
)

func testPipeline(t *testing.T) *xmlrdb.Pipeline {
	t.Helper()
	p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadXML(paper.BookXML, "book1"); err != nil {
		t.Fatal(err)
	}
	return p
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, ts, "/stats")
	if code != 200 {
		t.Fatalf("/stats = %d %q", code, body)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats["documents"].(float64) != 1 {
		t.Fatalf("/stats documents = %v", stats["documents"])
	}

	code, body = get(t, ts, "/query?sql=SELECT+COUNT(*)+FROM+e_author")
	if code != 200 {
		t.Fatalf("/query = %d %q", code, body)
	}
	var qr struct {
		Cols []string `json:"cols"`
		Rows [][]any  `json:"rows"`
		N    int      `json:"n"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.N != 1 || qr.Rows[0][0].(float64) != 2 {
		t.Fatalf("/query result = %+v", qr)
	}

	// POST body form.
	resp, err := ts.Client().Post(ts.URL+"/query", "text/plain",
		strings.NewReader("SELECT COUNT(*) FROM e_author"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}

	code, body = get(t, ts, "/path?q=/book/author")
	if code != 200 {
		t.Fatalf("/path = %d %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.N != 2 {
		t.Fatalf("/path rows = %+v", qr)
	}

	code, body = get(t, ts, "/doc/1")
	if code != 200 || !strings.Contains(body, "<booktitle>") {
		t.Fatalf("/doc/1 = %d %q", code, body)
	}

	// Error mapping: bad SQL and bad path are client errors.
	if code, _ := get(t, ts, "/query?sql=NOT+SQL"); code != 400 {
		t.Fatalf("bad sql = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/path?q=book"); code != 400 {
		t.Fatalf("bad path = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/doc/xyz"); code != 400 {
		t.Fatalf("bad doc id = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/query"); code != 400 {
		t.Fatalf("missing sql = %d, want 400", code)
	}
}

func TestExplainReportsCacheHit(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := get(t, ts, "/path?q=/book/booktitle/text()&explain=1")
	if strings.Contains(first, "plan-cache") {
		t.Fatalf("first explain already reports a cache hit:\n%s", first)
	}
	_, second := get(t, ts, "/path?q=/book/booktitle/text()&explain=1")
	if !strings.Contains(second, "-- plan-cache: hit") {
		t.Fatalf("second explain lacks the cache-hit note:\n%s", second)
	}
	snap := p.MetricsSnapshot()
	if snap.Query.PlanCacheHits < 1 {
		t.Fatalf("plan cache hits = %d, want >= 1", snap.Query.PlanCacheHits)
	}
}

func TestAdmissionGateSheds(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single admission slot, then observe the shed.
	s.gate <- struct{}{}
	resp, err := ts.Client().Get(ts.URL + "/query?sql=SELECT+1+FROM+e_author")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	<-s.gate
	// Health stays ungated even when the gate is full.
	s.gate <- struct{}{}
	if code, _ := get(t, ts, "/healthz"); code != 200 {
		t.Fatalf("/healthz gated: %d", code)
	}
	<-s.gate
	if got := p.Obs.ServeShed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

func TestRequestTimeout(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/query?sql=SELECT+COUNT(*)+FROM+e_author")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request = %d %q, want 504", code, body)
	}
	if got := p.Obs.ServeTimeouts.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

// TestShutdownDrains starts a slow query, shuts the server down
// mid-flight, and requires the request to complete successfully: drain
// means zero failed in-flight requests.
func TestShutdownDrains(t *testing.T) {
	p := testPipeline(t)
	// Widen e_author so the drain query is slow enough to overlap the
	// shutdown: ~100 authors make the 3-way nested-loop join take a few
	// hundred milliseconds.
	doc, err := p.ParseDocument(paper.BookXML)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*xmltree.Document, 50)
	for i := range docs {
		docs[i] = doc
	}
	if _, err := p.LoadCorpus(docs, 4); err != nil {
		t.Fatal(err)
	}

	s := New(p, Options{RequestTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	// No ts.Close(): Shutdown below owns the lifecycle.

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL +
			"/query?sql=" + "SELECT+COUNT(*)+FROM+e_author+a,+e_author+b,+e_author+c+WHERE+a.id+%3C%3E+b.id+AND+b.id+%3C%3E+c.id")
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the engine
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.code != 200 {
			t.Fatalf("in-flight request = %d during drain, want 200", r.code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

func TestServeAndShutdownLifecycle(t *testing.T) {
	p := testPipeline(t)
	s := New(p, Options{})
	// Bind an ephemeral port through the real Serve/Shutdown path.
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		ln, err := newLocalListener()
		if err != nil {
			errCh <- err
			return
		}
		addrCh <- ln.Addr().String()
		errCh <- s.Serve(ln)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// TestDisconnectReleasesCursorPin: a client that abandons a streaming
// /query mid-response must not keep the MVCC snapshot pinned open —
// the request-context guard in streamRows closes the cursor the
// moment the connection dies, so writers and the vacuum never wait on
// a dead client.
func TestDisconnectReleasesCursorPin(t *testing.T) {
	p := testPipeline(t)
	// A result comfortably larger than the response and socket buffers,
	// so the handler is still streaming when the client walks away.
	if _, _, err := p.DB.Exec(`CREATE TABLE big (id INTEGER PRIMARY KEY, pad TEXT)`); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 256)
	rows := make([][]any, 20000)
	for i := range rows {
		rows[i] = []any{int64(i), pad}
	}
	if _, err := p.DB.InsertBatch("big", rows); err != nil {
		t.Fatal(err)
	}

	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /query?sql=SELECT+*+FROM+big HTTP/1.1\r\nHost: test\r\n\r\n")
	// Read just the response head, then stall: the handler fills the
	// buffers and blocks with its cursor open.
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor pin to appear", func() bool { return p.DB.PinnedCursors() > 0 })

	// Abandon the connection; the pin must drop without the client ever
	// draining the response.
	conn.Close()
	waitFor(t, "cursor pin to be released after disconnect", func() bool {
		return p.DB.PinnedCursors() == 0
	})
}

// waitFor polls cond until it holds or a deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
