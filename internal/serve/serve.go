// Package serve exposes a recovered xmlrdb Pipeline over HTTP: SQL
// (/query), path queries (/path, with EXPLAIN), document reconstruction
// (/doc/{id}), health and store statistics, plus the obs debug
// endpoints. Query responses stream: rows are JSON-encoded as the
// engine produces them (first row prefetched so errors still map to a
// status code, then periodic flushes), so a client reading a large
// result sees bytes before the scan finishes and a client that
// disconnects aborts the scan at the engine's next cancellation
// checkpoint. Query endpoints run under a per-request deadline wired
// into the engine's cancellation checkpoints and behind a
// bounded-concurrency admission gate that sheds load with 429 +
// Retry-After instead of queueing without bound. Shutdown drains
// in-flight requests before returning, so the caller can close the
// pipeline without cutting off accepted work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"xmlrdb"
	"xmlrdb/internal/obs"
)

// Options tunes a Server.
type Options struct {
	// MaxConcurrent bounds concurrently executing query requests (the
	// admission gate); <= 0 selects 8. Health, stats and debug endpoints
	// are not gated.
	MaxConcurrent int
	// RequestTimeout is the per-request execution deadline; <= 0 selects
	// 5s. A request that exceeds it aborts at the engine's next
	// cancellation checkpoint and returns 504.
	RequestTimeout time.Duration
	// Metrics receives request counters, latency and the in-flight
	// gauge; nil uses the pipeline's own hub.
	Metrics *obs.Metrics
	// Recorder holds completed request traces for /debug/traces; nil
	// creates one (sized obs.DefaultRecorderSize, slow threshold
	// SlowQuery).
	Recorder *obs.Recorder
	// SlowQuery marks request traces at or over this duration as slow,
	// which the flight recorder retains preferentially. <= 0 disables
	// the slow classification.
	SlowQuery time.Duration
	// TraceSample controls request tracing: 0 or 1 traces every
	// request, N > 1 traces one in N, and a negative value disables
	// tracing entirely (no spans, no flight-recorder entries).
	TraceSample int
}

// Server serves one pipeline. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	p      *xmlrdb.Pipeline
	opts   Options
	gate   chan struct{}
	obs    *obs.Metrics
	rec    *obs.Recorder
	traceN atomic.Uint64 // round-robin sampling counter
	mux    *http.ServeMux
	srv    *http.Server
}

// New builds a Server around an open pipeline. The pipeline stays
// owned by the caller: Shutdown drains requests but does not close it.
func New(p *xmlrdb.Pipeline, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 8
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	m := opts.Metrics
	if m == nil {
		m = p.Obs
	}
	rec := opts.Recorder
	if rec == nil {
		rec = obs.NewRecorder(0, opts.SlowQuery)
	}
	s := &Server{
		p:    p,
		opts: opts,
		gate: make(chan struct{}, opts.MaxConcurrent),
		obs:  m,
		rec:  rec,
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /query", s.gated("query", s.handleQuery))
	s.mux.Handle("POST /query", s.gated("query", s.handleQuery))
	s.mux.Handle("GET /path", s.gated("path", s.handlePath))
	s.mux.Handle("GET /doc/{id}", s.gated("doc", s.handleDoc))
	s.mux.Handle("/debug/", obs.DebugMuxWith(m, rec))
	s.mux.Handle("GET /metrics", obs.PromHandler(m))
	s.srv = &http.Server{Handler: s.mux}
	return s
}

// Recorder returns the server's flight recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// sampleTrace decides whether the next request is traced.
func (s *Server) sampleTrace() bool {
	n := s.opts.TraceSample
	if n < 0 {
		return false
	}
	if n <= 1 {
		return true
	}
	return s.traceN.Add(1)%uint64(n) == 1
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error { return s.srv.Serve(ln) }

// ListenAndServe binds addr and serves; see Serve.
func (s *Server) ListenAndServe(addr string) error {
	s.srv.Addr = addr
	return s.srv.ListenAndServe()
}

// Shutdown stops accepting new connections and blocks until every
// in-flight request has completed or ctx expires. Close the pipeline
// only after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// gated wraps a query handler with the admission gate, the per-request
// deadline and the serve metrics. A saturated gate sheds immediately
// with 429 + Retry-After rather than queueing: the client can retry,
// and the requests already running keep their resources.
func (s *Server) gated(name string, h func(http.ResponseWriter, *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
		default:
			s.obs.ServeShed.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.gate }()
		s.obs.ServeRequests.Inc()
		s.obs.ServeInflight.Inc()
		defer s.obs.ServeInflight.Dec()
		start := time.Now()
		// Latency is recorded in a defer: a mid-stream failure aborts the
		// handler with a panic (the status line is already on the wire)
		// and must still count.
		defer func() { s.obs.ServeLatency.ObserveDuration(time.Since(start)) }()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		var tr *obs.Trace
		if s.sampleTrace() {
			// One root span per request. A client-supplied X-Request-ID
			// becomes the trace ID and is echoed back either way, so the
			// caller can fetch /debug/traces/{id} afterwards.
			tr = obs.NewTrace("serve."+name, r.Header.Get("X-Request-ID"))
			root := tr.Root()
			root.SetAttr("method", r.Method)
			root.SetAttr("url", r.URL.String())
			w.Header().Set("X-Request-ID", tr.ID)
			ctx = obs.WithTrace(ctx, tr)
			// Recorded in a defer so aborted (panicking) streams are
			// captured too — those are exactly the traces worth keeping.
			defer func() {
				if p := recover(); p != nil {
					tr.Finish(errAborted)
					s.rec.Record(tr)
					panic(p)
				}
				tr.Finish(nil) // no-op if already finished with an error
				s.rec.Record(tr)
			}()
		}
		if err := h(w, r.WithContext(ctx)); err != nil {
			s.obs.ServeErrors.Inc()
			tr.Finish(err)
			s.fail(w, err)
			return
		}
	})
}

// errAborted marks traces whose response stream failed mid-flight.
var errAborted = errors.New("response aborted mid-stream")

// fail maps an execution error to a status code and writes it.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.obs.ServeTimeouts.Inc()
		http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx's vocabulary. The write is
		// best-effort — the connection is usually gone.
		http.Error(w, "request cancelled", 499)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.p.Stats()
	docs, err := s.p.DocumentIDs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{
		"tables":    st.Tables,
		"rows":      st.Rows,
		"bytes":     st.Bytes,
		"documents": len(docs),
		// Per-table ANALYZE freshness: whether statistics exist and how
		// many mutations have committed since they were collected.
		"stats_freshness": s.p.StatsFreshness(),
	})
}

// streamFlushEvery is the row interval between forced flushes once a
// response is streaming.
const streamFlushEvery = 64

// streamRows writes a cursor's result in the {"cols":…,"rows":…,"n":…}
// shape, encoding each row as the engine produces it instead of
// materializing the result. The first row is prefetched before the
// header goes out, so plan-time and early execution errors still map
// to a status code; after that the response flushes on the first row
// and every streamFlushEvery rows, so a client reading a large result
// sees bytes before the scan finishes. A failure once the body has
// started cannot change the status line, so the connection is aborted
// instead — the client sees a truncated body, not a complete-looking
// partial result.
func (s *Server) streamRows(ctx context.Context, w http.ResponseWriter, cur xmlrdb.Cursor) error {
	defer cur.Close()
	// Idle-cursor guard: a cursor pins an MVCC snapshot (and its row
	// versions) until Close, so an abandoned connection must not keep it
	// open — close the cursor the moment the request context dies.
	// Cursors tolerate Close racing Next; the loop then sees Next()
	// return false and falls through to the normal epilogue.
	stop := context.AfterFunc(ctx, func() { cur.Close() })
	defer stop()
	have := cur.Next()
	if err := cur.Err(); err != nil {
		return err
	}
	cols := cur.Cols()
	if cols == nil {
		cols = []string{}
	}
	head, err := json.Marshal(cols)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	fl, _ := w.(http.Flusher)
	fmt.Fprintf(w, `{"cols":%s,"rows":[`, head)
	n := 0
	for have {
		rowJSON, err := json.Marshal(cur.Row())
		if err != nil {
			s.abort(err)
		}
		if n > 0 {
			io.WriteString(w, ",")
		}
		w.Write(rowJSON)
		n++
		s.obs.ServeRowsStreamed.Inc()
		if fl != nil && (n == 1 || n%streamFlushEvery == 0) {
			fl.Flush()
		}
		have = cur.Next()
	}
	if err := cur.Err(); err != nil {
		s.abort(err)
	}
	fmt.Fprintf(w, "],\"n\":%d}\n", n)
	return nil
}

// abort records a mid-stream failure and drops the connection.
func (s *Server) abort(err error) {
	s.obs.ServeErrors.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		s.obs.ServeTimeouts.Inc()
	}
	panic(http.ErrAbortHandler)
}

// handleQuery executes a SQL statement: ?sql= on GET, the request body
// on POST. Bodies are capped at 1 MiB — a statement longer than that
// is a mistake, not a workload. SELECT results stream as they are
// produced.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	stmt := r.URL.Query().Get("sql")
	if r.Method == http.MethodPost && stmt == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			return err
		}
		stmt = string(body)
	}
	if strings.TrimSpace(stmt) == "" {
		return fmt.Errorf("missing sql (use ?sql= or a POST body)")
	}
	cur, err := s.p.SQLCursor(r.Context(), stmt)
	if err != nil {
		return err
	}
	return s.streamRows(r.Context(), w, cur)
}

// handlePath executes a path query (?q=), or renders its EXPLAIN
// report — including each arm's executed physical plan — with
// ?explain=1. Result rows stream as the union arms produce them.
func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) error {
	path := r.URL.Query().Get("q")
	if path == "" {
		return fmt.Errorf("missing path query (use ?q=)")
	}
	if r.URL.Query().Get("explain") == "1" {
		report, err := s.p.ExplainPathContext(r.Context(), path)
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report)
		return nil
	}
	cur, err := s.p.QueryCursor(r.Context(), path)
	if err != nil {
		return err
	}
	return s.streamRows(r.Context(), w, cur)
}

// handleDoc reconstructs one document by id.
func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) error {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return fmt.Errorf("bad document id %q", r.PathValue("id"))
	}
	xml, err := s.p.Reconstruct(id)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	fmt.Fprint(w, xml)
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
