// Package validate checks XML documents against a DTD: content models
// (via Glushkov automata from the cmodel package), attribute
// declarations and defaults, ID uniqueness, and IDREF referential
// integrity. It also audits the DTD itself for the XML 1.0 validity
// constraints a schema can violate on its own (nondeterministic content
// models, references to undeclared element types, duplicate ID
// attributes).
package validate

import (
	"fmt"
	"sort"
	"strings"

	"xmlrdb/internal/cmodel"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/xmltree"
)

// Violation is one validity problem, located by element path.
type Violation struct {
	// Path is the slash-separated path of the offending element, or
	// "<dtd>" for schema-level problems.
	Path string
	// Msg describes the violation.
	Msg string
}

// String renders the violation for diagnostics.
func (v Violation) String() string { return v.Path + ": " + v.Msg }

// Validator validates documents against one DTD. It compiles each
// element's content model once and is safe for reuse across documents
// (but not for concurrent use).
type Validator struct {
	d      *dtd.DTD
	autos  map[string]*cmodel.Automaton
	mixed  map[string]map[string]bool
	schema []Violation
}

// New compiles a validator for the DTD. Schema-level problems do not
// fail construction; they are reported by SchemaViolations and included
// in every Validate result.
func New(d *dtd.DTD) *Validator {
	v := &Validator{
		d:     d,
		autos: make(map[string]*cmodel.Automaton),
		mixed: make(map[string]map[string]bool),
	}
	for _, name := range d.ElementOrder {
		decl := d.Elements[name]
		switch decl.Content.Kind {
		case dtd.ContentChildren, dtd.ContentEmpty:
			a := cmodel.CompileModel(decl.Content)
			v.autos[name] = a
			if !a.Deterministic() {
				v.schema = append(v.schema, Violation{
					Path: "<dtd>",
					Msg:  fmt.Sprintf("element %q has a nondeterministic content model: %s", name, a.Conflict()),
				})
			}
		case dtd.ContentMixed:
			set := make(map[string]bool, len(decl.Content.MixedNames))
			seen := make(map[string]bool)
			for _, n := range decl.Content.MixedNames {
				if seen[n] {
					v.schema = append(v.schema, Violation{
						Path: "<dtd>",
						Msg:  fmt.Sprintf("element %q repeats %q in mixed content", name, n),
					})
				}
				seen[n] = true
				set[n] = true
			}
			v.mixed[name] = set
		}
	}
	for _, name := range d.UndeclaredReferences() {
		v.schema = append(v.schema, Violation{
			Path: "<dtd>",
			Msg:  fmt.Sprintf("element type %q is referenced in a content model but never declared", name),
		})
	}
	for el, atts := range d.Attlists {
		ids := 0
		for _, a := range atts {
			if a.Type == dtd.AttID {
				ids++
				if a.Default != dtd.DefRequired && a.Default != dtd.DefImplied {
					v.schema = append(v.schema, Violation{
						Path: "<dtd>",
						Msg:  fmt.Sprintf("ID attribute %s/@%s must be #REQUIRED or #IMPLIED", el, a.Name),
					})
				}
			}
		}
		if ids > 1 {
			v.schema = append(v.schema, Violation{
				Path: "<dtd>",
				Msg:  fmt.Sprintf("element %q declares %d ID attributes; at most one is allowed", el, ids),
			})
		}
	}
	return v
}

// SchemaViolations returns problems found in the DTD itself.
func (v *Validator) SchemaViolations() []Violation {
	return append([]Violation(nil), v.schema...)
}

// Validate checks one document and returns all violations found (schema
// violations first). An empty result means the document is valid.
func (v *Validator) Validate(doc *xmltree.Document) []Violation {
	out := v.SchemaViolations()
	st := &state{v: v, ids: make(map[string]string)}
	if doc.DoctypeName != "" && doc.Root != nil && doc.Root.Name != doc.DoctypeName {
		out = append(out, Violation{
			Path: doc.Root.Path(),
			Msg:  fmt.Sprintf("root element is %q but DOCTYPE declares %q", doc.Root.Name, doc.DoctypeName),
		})
	}
	if doc.Root != nil {
		st.element(doc.Root)
	}
	out = append(out, st.out...)
	// IDREF integrity after collecting every ID.
	for _, ref := range st.refs {
		if _, ok := st.ids[ref.id]; !ok {
			out = append(out, Violation{
				Path: ref.path,
				Msg:  fmt.Sprintf("IDREF %q does not match any ID in the document", ref.id),
			})
		}
	}
	return out
}

// ValidateAll validates a batch of documents; IDs are scoped per
// document, as the XML recommendation requires.
func (v *Validator) ValidateAll(docs []*xmltree.Document) []Violation {
	var out []Violation
	for _, d := range docs {
		out = append(out, v.Validate(d)...)
	}
	return out
}

type pendingRef struct {
	id, path string
}

type state struct {
	v    *Validator
	out  []Violation
	ids  map[string]string // ID value -> defining element path
	refs []pendingRef
}

func (s *state) violatef(path, format string, args ...any) {
	s.out = append(s.out, Violation{Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (s *state) element(el *xmltree.Node) {
	path := el.Path()
	decl := s.v.d.Element(el.Name)
	if decl == nil {
		s.violatef(path, "element type %q is not declared", el.Name)
	} else {
		s.content(el, decl, path)
	}
	s.attributes(el, path)
	for _, c := range el.Children {
		if c.Kind == xmltree.ElementNode {
			s.element(c)
		}
	}
}

func (s *state) content(el *xmltree.Node, decl *dtd.ElementDecl, path string) {
	switch decl.Content.Kind {
	case dtd.ContentAny:
		return
	case dtd.ContentEmpty:
		if len(el.Children) > 0 {
			for _, c := range el.Children {
				if c.Kind == xmltree.CommentNode || c.Kind == xmltree.PINode {
					continue
				}
				s.violatef(path, "element %q is declared EMPTY but has content", el.Name)
				return
			}
		}
	case dtd.ContentMixed:
		allowed := s.v.mixed[el.Name]
		for _, c := range el.ChildElements() {
			if !allowed[c.Name] {
				s.violatef(path, "element %q not permitted in mixed content of %q (allowed: %s)",
					c.Name, el.Name, setString(allowed))
			}
		}
	case dtd.ContentChildren:
		if t := strings.TrimSpace(el.DirectText()); t != "" {
			s.violatef(path, "element %q has element content but contains text %q", el.Name, truncate(t, 30))
		}
		a := s.v.autos[el.Name]
		if a == nil {
			return
		}
		m := a.NewMatcher()
		for _, name := range el.ChildElementNames() {
			if !m.Step(name) {
				s.violatef(path, "child %q not permitted here; expected %s (content model %s)",
					name, m.ExpectedString(), decl.Content.String())
				return
			}
		}
		if !m.Accepting() {
			s.violatef(path, "content of %q ends prematurely; expected %s (content model %s)",
				el.Name, m.ExpectedString(), decl.Content.String())
		}
	}
}

func (s *state) attributes(el *xmltree.Node, path string) {
	defs := s.v.d.Atts(el.Name)
	byName := make(map[string]dtd.AttDef, len(defs))
	for _, def := range defs {
		byName[def.Name] = def
	}
	for _, a := range el.Attrs {
		def, declared := byName[a.Name]
		if !declared {
			s.violatef(path, "attribute %q is not declared for element %q", a.Name, el.Name)
			continue
		}
		s.attrValue(el, a, def, path)
	}
	for _, def := range defs {
		if def.Default == dtd.DefRequired {
			if _, ok := el.Attr(def.Name); !ok {
				s.violatef(path, "required attribute %q missing on element %q", def.Name, el.Name)
			}
		}
	}
}

func (s *state) attrValue(el *xmltree.Node, a xmltree.Attr, def dtd.AttDef, path string) {
	switch def.Type {
	case dtd.AttID:
		if !isName(a.Value) {
			s.violatef(path, "ID attribute %q has non-name value %q", a.Name, a.Value)
			return
		}
		if prev, dup := s.ids[a.Value]; dup {
			s.violatef(path, "ID %q already defined at %s", a.Value, prev)
			return
		}
		s.ids[a.Value] = path
	case dtd.AttIDREF:
		if !isName(a.Value) {
			s.violatef(path, "IDREF attribute %q has non-name value %q", a.Name, a.Value)
			return
		}
		s.refs = append(s.refs, pendingRef{id: a.Value, path: path})
	case dtd.AttIDREFS:
		toks := strings.Fields(a.Value)
		if len(toks) == 0 {
			s.violatef(path, "IDREFS attribute %q is empty", a.Name)
		}
		for _, tok := range toks {
			if !isName(tok) {
				s.violatef(path, "IDREFS attribute %q has non-name token %q", a.Name, tok)
				continue
			}
			s.refs = append(s.refs, pendingRef{id: tok, path: path})
		}
	case dtd.AttEnum, dtd.AttNotation:
		ok := false
		for _, e := range def.Enum {
			if e == a.Value {
				ok = true
				break
			}
		}
		if !ok {
			s.violatef(path, "attribute %q value %q not in (%s)", a.Name, a.Value, strings.Join(def.Enum, " | "))
		}
	case dtd.AttNMToken:
		if !isNmtoken(a.Value) {
			s.violatef(path, "NMTOKEN attribute %q has invalid value %q", a.Name, a.Value)
		}
	case dtd.AttNMTokens:
		if len(strings.Fields(a.Value)) == 0 {
			s.violatef(path, "NMTOKENS attribute %q is empty", a.Name)
		}
	}
	if def.Default == dtd.DefFixed && a.Value != def.Value {
		s.violatef(path, "attribute %q is #FIXED %q but has value %q", a.Name, def.Value, a.Value)
	}
}

func isName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || c == '-' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9') || c >= 0x80
		if !ok {
			return false
		}
		if i == 0 && (c == '-' || c == '.' || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

func isNmtoken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || c == '-' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9') || c >= 0x80
		if !ok {
			return false
		}
	}
	return true
}

func setString(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "#PCDATA only"
	}
	return strings.Join(names, ", ")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
