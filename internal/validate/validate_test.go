package validate

import (
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/xmltree"
)

const paperDTD = `
<!ELEMENT book (booktitle, (author* | editor))>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT article (title, (author, affiliation?)+, contactauthor?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT contactauthor EMPTY>
<!ATTLIST contactauthor authorid IDREF #IMPLIED>
<!ELEMENT monograph (title, author, editor)>
<!ELEMENT editor ((book | monograph)*)>
<!ATTLIST editor name CDATA #REQUIRED>
<!ELEMENT author (name)>
<!ATTLIST author id ID #REQUIRED>
<!ELEMENT name (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT affiliation ANY>
`

func validator(t *testing.T) *Validator {
	t.Helper()
	return New(dtd.MustParse(paperDTD))
}

func check(t *testing.T, v *Validator, src string) []Violation {
	t.Helper()
	doc, err := xmltree.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return v.Validate(doc)
}

func wantClean(t *testing.T, v *Validator, src string) {
	t.Helper()
	if got := check(t, v, src); len(got) != 0 {
		t.Errorf("want valid, got violations: %v", got)
	}
}

func wantViolation(t *testing.T, v *Validator, src, substr string) {
	t.Helper()
	got := check(t, v, src)
	for _, viol := range got {
		if strings.Contains(viol.Msg, substr) {
			return
		}
	}
	t.Errorf("want violation containing %q, got %v", substr, got)
}

func TestValidDocuments(t *testing.T) {
	v := validator(t)
	wantClean(t, v, `<book><booktitle>X</booktitle><author id="a1"><name><lastname>S</lastname></name></author></book>`)
	wantClean(t, v, `<book><booktitle>X</booktitle><editor name="E"></editor></book>`)
	wantClean(t, v, `<book>
  <booktitle>With whitespace</booktitle>
  <author id="a1"><name><firstname>J</firstname><lastname>S</lastname></name></author>
  <author id="a2"><name><lastname>B</lastname></name></author>
</book>`)
	wantClean(t, v, `<article><title>T</title><author id="x"><name><lastname>L</lastname></name></author><contactauthor authorid="x"/></article>`)
	// affiliation is ANY: arbitrary declared elements and text allowed.
	wantClean(t, v, `<article><title>T</title><author id="x"><name><lastname>L</lastname></name></author><affiliation>free <title>t</title> text</affiliation></article>`)
}

func TestContentModelViolations(t *testing.T) {
	v := validator(t)
	wantViolation(t, v, `<book><author id="a"><name><lastname>x</lastname></name></author></book>`,
		"not permitted here")
	wantViolation(t, v, `<book><booktitle>X</booktitle><author id="a"><name><lastname>x</lastname></name></author><editor name="e"/></book>`,
		"not permitted")
	// (author* | editor) is nullable, so a bare booktitle is complete.
	wantClean(t, v, `<book><booktitle>X</booktitle></book>`)
	// premature end
	got := check(t, v, `<monograph><title>T</title></monograph>`)
	found := false
	for _, viol := range got {
		if strings.Contains(viol.Msg, "ends prematurely") {
			found = true
		}
	}
	if !found {
		t.Errorf("want premature-end violation, got %v", got)
	}
}

func TestTextInElementContent(t *testing.T) {
	v := validator(t)
	wantViolation(t, v, `<book>stray text<booktitle>X</booktitle><editor name="e"/></book>`,
		"contains text")
}

func TestEmptyElement(t *testing.T) {
	v := validator(t)
	wantViolation(t, v,
		`<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><contactauthor>oops</contactauthor></article>`,
		"declared EMPTY")
}

func TestUndeclaredElement(t *testing.T) {
	v := validator(t)
	wantViolation(t, v, `<bogus/>`, "not declared")
}

func TestAttributeViolations(t *testing.T) {
	v := validator(t)
	wantViolation(t, v, `<book><booktitle>X</booktitle><editor/></book>`, "required attribute")
	wantViolation(t, v, `<book color="red"><booktitle>X</booktitle><editor name="e"/></book>`, "not declared")
}

func TestIDUniquenessAndIDREF(t *testing.T) {
	v := validator(t)
	wantViolation(t, v,
		`<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><author id="a"><name><lastname>y</lastname></name></author></article>`,
		"already defined")
	wantViolation(t, v,
		`<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><contactauthor authorid="ghost"/></article>`,
		"does not match any ID")
	wantViolation(t, v, `<author id="9bad"><name><lastname>x</lastname></name></author>`, "non-name")
}

func TestMixedContent(t *testing.T) {
	v := New(dtd.MustParse(`
<!ELEMENT para (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT div (para+)>
`))
	wantClean(t, v, `<para>text <em>emph</em> more</para>`)
	wantViolation(t, v, `<para>text <div><para>x</para></div></para>`, "not permitted in mixed content")
	// PCDATA-only element must not have element children.
	wantViolation(t, v, `<em>text <em>nested</em></em>`, "not permitted in mixed content")
}

func TestEnumAndFixed(t *testing.T) {
	v := New(dtd.MustParse(`
<!ELEMENT e EMPTY>
<!ATTLIST e
  kind (a | b) #REQUIRED
  ver CDATA #FIXED "1"
  tok NMTOKEN #IMPLIED>
`))
	wantClean(t, v, `<e kind="a" ver="1"/>`)
	wantViolation(t, v, `<e kind="c" ver="1"/>`, "not in (a | b)")
	wantViolation(t, v, `<e kind="a" ver="2"/>`, "#FIXED")
	wantViolation(t, v, `<e kind="a" ver="1" tok="has space"/>`, "NMTOKEN")
}

func TestIDREFS(t *testing.T) {
	v := New(dtd.MustParse(`
<!ELEMENT r (n*)>
<!ELEMENT n EMPTY>
<!ATTLIST n id ID #IMPLIED see IDREFS #IMPLIED>
`))
	wantClean(t, v, `<r><n id="a"/><n id="b"/><n see="a b"/></r>`)
	wantViolation(t, v, `<r><n id="a"/><n see="a ghost"/></r>`, "does not match any ID")
	wantViolation(t, v, `<r><n see=""/></r>`, "empty")
}

func TestSchemaViolations(t *testing.T) {
	v := New(dtd.MustParse(`
<!ELEMENT r ((a, b) | (a, c))>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST b i ID "def">
<!ATTLIST a x ID #IMPLIED y ID #IMPLIED>
`))
	sv := v.SchemaViolations()
	text := ""
	for _, viol := range sv {
		text += viol.Msg + "\n"
	}
	for _, want := range []string{"nondeterministic", "never declared", "#REQUIRED or #IMPLIED", "at most one"} {
		if !strings.Contains(text, want) {
			t.Errorf("schema violations missing %q in:\n%s", want, text)
		}
	}
}

func TestDoctypeNameMismatch(t *testing.T) {
	v := New(dtd.MustParse(`<!ELEMENT a EMPTY><!ELEMENT b EMPTY>`))
	doc := xmltree.MustParse(`<!DOCTYPE a [<!ELEMENT a EMPTY>]><b/>`)
	got := v.Validate(doc)
	found := false
	for _, viol := range got {
		if strings.Contains(viol.Msg, "DOCTYPE") {
			found = true
		}
	}
	if !found {
		t.Errorf("want DOCTYPE mismatch, got %v", got)
	}
}

func TestValidateAll(t *testing.T) {
	// IDs are per-document: the same ID in two documents is fine.
	v := New(dtd.MustParse(`<!ELEMENT n EMPTY><!ATTLIST n id ID #REQUIRED>`))
	d1 := xmltree.MustParse(`<n id="same"/>`)
	d2 := xmltree.MustParse(`<n id="same"/>`)
	if got := v.ValidateAll([]*xmltree.Document{d1, d2}); len(got) != 0 {
		t.Errorf("cross-document ID clash reported: %v", got)
	}
}

func TestViolationString(t *testing.T) {
	viol := Violation{Path: "/a/b", Msg: "boom"}
	if viol.String() != "/a/b: boom" {
		t.Errorf("String = %q", viol.String())
	}
}

func TestCommentsAndPIsAllowedInEmpty(t *testing.T) {
	v := validator(t)
	wantClean(t, v, `<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><contactauthor><!-- ok --></contactauthor></article>`)
}
