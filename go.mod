module xmlrdb

go 1.22
