#!/bin/sh
# Serving smoke test: boot xmlserve on the bibliography testdata, run a
# scripted request mix across every endpoint, prove the admission gate
# sheds with 429, then deliver SIGTERM while a slow query is in flight
# and require that request to complete (graceful drain = zero failed
# in-flight requests). Any unexpected status fails the script.
set -eu

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
LOG="$BIN/serve.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/xmlserve" ./cmd/xmlserve

# Load book.xml many times (x_docs has no unique name constraint) so the
# author table is big enough that a 3-way join runs for a couple of
# seconds — long enough to saturate the gate and to stay in flight
# across SIGTERM.
DOCS="testdata/article.xml"
i=0
while [ "$i" -lt 100 ]; do
    DOCS="$DOCS testdata/book.xml"
    i=$((i + 1))
done

ADDR=127.0.0.1:8742
# shellcheck disable=SC2086
"$BIN/xmlserve" -dtd testdata/bib.dtd -addr "$ADDR" -max-concurrent 2 \
    -timeout-ms 30000 $DOCS >"$LOG" 2>&1 &
SRV_PID=$!

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

want() { # want <url-path> <expected-status> [curl args...]
    path=$1; expect=$2; shift 2
    got=$(curl -s -o /dev/null -w '%{http_code}' "$@" "http://$ADDR$path")
    if [ "$got" != "$expect" ]; then
        echo "serve-smoke: GET $path = $got, want $expect" >&2
        exit 1
    fi
}

want /healthz 200
want /stats 200
want '/query?sql=SELECT+COUNT(*)+FROM+e_author' 200
want '/query?sql=SELECT+COUNT(*)+FROM+e_author' 200 -X POST
want '/path?q=/book/author' 200
want '/path?q=/book/booktitle/text()&explain=1' 200
want /doc/1 200
want /doc/2 200
want /debug/metrics 200
want '/query?sql=NOT+SQL' 400
want '/path?q=nope' 400
want /doc/999 400
want /nosuch 404

# The second explain must be served from the plan cache.
if ! curl -fsS "http://$ADDR/path?q=/book/booktitle/text()&explain=1" | grep -q 'plan-cache: hit'; then
    echo "serve-smoke: repeated explain not served from the plan cache" >&2
    exit 1
fi

# Saturate the 2-slot admission gate with slow nested-loop joins; at
# least one of a burst of 8 must be shed with 429. The predicate is
# never true, so the join does its O(n^3) work without materialising
# rows.
SLOW='/query?sql=SELECT+COUNT(*)+FROM+e_author+a,+e_author+b,+e_author+c+WHERE+a.id+%2B+b.id+%2B+c.id+%3C+0'
codes="$BIN/burst.codes"
: >"$codes"
BURST_PIDS=""
n=0
while [ "$n" -lt 8 ]; do
    curl -s -o /dev/null -w '%{http_code}\n' "http://$ADDR$SLOW" >>"$codes" &
    BURST_PIDS="$BURST_PIDS $!"
    n=$((n + 1))
done
for pid in $BURST_PIDS; do
    wait "$pid" || true
done
if ! grep -q '^429$' "$codes"; then
    echo "serve-smoke: saturated gate never shed (codes: $(tr '\n' ' ' <"$codes"))" >&2
    exit 1
fi
if ! grep -q '^200$' "$codes"; then
    echo "serve-smoke: no request survived the burst (codes: $(tr '\n' ' ' <"$codes"))" >&2
    exit 1
fi

# Graceful drain: start a slow query, SIGTERM the server mid-flight, and
# require the in-flight request to complete with 200.
curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$SLOW" >"$BIN/inflight.code" &
CURL_PID=$!
sleep 0.3
kill -TERM "$SRV_PID"
if ! wait "$CURL_PID"; then
    echo "serve-smoke: in-flight request aborted during drain" >&2
    exit 1
fi
INFLIGHT=$(cat "$BIN/inflight.code")
if [ "$INFLIGHT" != "200" ]; then
    echo "serve-smoke: in-flight request = $INFLIGHT during drain, want 200" >&2
    exit 1
fi
wait "$SRV_PID" || { echo "serve-smoke: server exited non-zero" >&2; cat "$LOG" >&2; exit 1; }
if ! grep -q 'drained, store closed' "$LOG"; then
    echo "serve-smoke: no drain confirmation in server log" >&2
    cat "$LOG" >&2
    exit 1
fi
SRV_PID=""

echo "serve-smoke: OK"
