# Verify flow: `make check` is what CI (and a pre-commit run) should
# execute — vet, build, the full test suite, and the race detector over
# the two packages with real concurrency (engine locking, corpus loader).

GO ?= go

.PHONY: build test vet race check bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/shred/...

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the E5b parallel-load numbers (EXPERIMENTS.md).
bench-parallel:
	$(GO) test -run XXX -bench=ParallelLoad -benchtime=5x .
	$(GO) run ./cmd/xmlbench -exp e5b
