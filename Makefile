# Verify flow: `make check` is what CI (and a pre-commit run) should
# execute — vet, build, the full test suite, and the race detector over
# the packages with real concurrency (engine locking, corpus loader,
# metrics counters).

GO ?= go

.PHONY: build test vet race race-vec race-mvcc check crash-matrix bench bench-parallel bench-json stats-demo serve-smoke explain-golden bench-streaming-smoke bench-vec-smoke bench-cbo-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/shred/... ./internal/obs/... \
		./internal/pathquery/... ./internal/serve/...

# MVCC snapshot-read subset under the race detector: writers and
# checkpoints committing under open cursors, snapshot stability under
# generation churn with concurrent vacuum, concurrent Close/Next, and
# the serve guard that unpins abandoned cursors on client disconnect.
race-mvcc:
	$(GO) test -race -run 'TestSnapshot|TestWriterAndCheckpoint|TestCheckpointWithOpenCursor|TestPin|TestConcurrentClose|TestCompact|TestVacuum|TestServingMixStress' ./internal/engine/
	$(GO) test -race -run 'TestDisconnectReleasesCursorPin' ./internal/serve/

# Batch-operator subset under the race detector: vectorized scans
# racing writers that invalidate the columnar sidecar, plus the
# dictionary codec tests. Redundant with `race` but fast enough to run
# alone while iterating on the executor.
race-vec:
	$(GO) test -race -run 'TestVec|TestDict' ./internal/engine/

# Fault-injection recovery matrix: kill the durable engine at every
# byte offset and every fsync boundary of a scripted workload (plus the
# WAL/snapshot corruption sweeps) and require exact prefix recovery,
# under the race detector.
crash-matrix:
	$(GO) test -race -run 'TestCrash|TestDurable|TestWALReplay|TestSnapshotEvery|FuzzWALReplay' ./internal/engine/
	$(GO) test -race ./internal/faultfs/

check: vet build test race race-vec race-mvcc crash-matrix explain-golden bench-streaming-smoke bench-vec-smoke bench-cbo-smoke serve-smoke

# Golden physical-plan tests: the executed EXPLAIN tree for the
# planner's main shapes must match testdata/explain/*.golden
# byte-for-byte (regenerate with -update after intentional changes).
explain-golden:
	$(GO) test -run 'TestExplainGoldenPlans' -v ./internal/engine/

# One short iteration of the streaming-limit benchmark: proves the
# LIMIT path still short-circuits (the run fails outright if the
# iterator contract breaks) without paying full benchmark time.
bench-streaming-smoke:
	$(GO) test -run XXX -bench BenchmarkStreamingLimit -benchtime 1x ./internal/engine/

# One iteration of the vectorized-aggregate benchmark: each iteration
# re-checks the batched result against the row-at-a-time answer, so
# this fails outright if the vectorized path diverges.
bench-vec-smoke:
	$(GO) test -run XXX -bench BenchmarkVecAggregate -benchtime 1x ./internal/engine/

# Cost-based-optimizer smoke: the skewed-chain test proves the planner
# reorders the join and builds the small hash side (and that both
# planners agree on the rows), then one iteration of the chain
# benchmark re-checks the count under each planner.
bench-cbo-smoke:
	$(GO) test -run TestCBOPicksCheaperOrder -bench BenchmarkCBOJoinChain -benchtime 1x ./internal/engine/

# Serving smoke test: boot xmlserve on the bibliography testdata, run a
# scripted curl mix over every endpoint (including saturation shedding
# and an in-flight request across SIGTERM), and fail on any unexpected
# status. Proves graceful drain end to end.
serve-smoke:
	./scripts/serve-smoke.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf trajectory: re-run the E9b streaming benchmark
# and the E13/E14 experiments, writing their timings to BENCH_E13.json
# and BENCH_E14.json for cross-PR diffing.
bench-json:
	$(GO) test -run XXX -bench BenchmarkStreamingLimit -benchtime 1x ./internal/engine/
	$(GO) run ./cmd/xmlbench -exp e13 -json BENCH_E13.json
	$(GO) run ./cmd/xmlbench -exp e14 -json BENCH_E14.json

# Regenerate the E5b parallel-load numbers (EXPERIMENTS.md).
bench-parallel:
	$(GO) test -run XXX -bench=ParallelLoad -benchtime=5x .
	$(GO) run ./cmd/xmlbench -exp e5b

# Observability demo: load the testdata corpus with metrics attached,
# then run the EXPLAIN plan-stats experiment with the -stats report.
stats-demo:
	$(GO) run ./cmd/xmlshred -dtd testdata/bib.dtd -stats \
		testdata/book.xml testdata/article.xml
	$(GO) run ./cmd/xmlbench -exp e6b -stats
